"""The built-in DS rule set.

Each rule is a :class:`repro.lint.engine.Rule` plugin registered with
the :func:`repro.lint.engine.rule` decorator; ``docs/linting.md``
documents the rationale, remediation and scoping of every code.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lint.engine import FileContext, Finding, MetricManifest, Rule, rule

#: Magic unit multipliers and their named equivalents in repro.units.
UNIT_LITERALS: dict[float, str] = {
    1e-3: "units.MILLI",
    1e-6: "units.MICRO",
    1e-9: "units.NANO",
    1e3: "units.KILO",
    1e6: "units.MEGA",
    1e9: "units.GIGA",
    273.15: "a named Celsius/Kelvin offset constant",
}

#: Exception names DS201 refuses in library raises.
BARE_EXCEPTIONS = frozenset(
    {"ValueError", "RuntimeError", "KeyError", "Exception"}
)

#: Registry recording methods whose first argument is a metric name.
METRIC_METHODS = frozenset(
    {"incr", "observe", "gauge", "histogram", "timer", "span"}
)

#: Receivers treated as the observability registry at a call site.
METRIC_RECEIVERS = frozenset({"obs", "REGISTRY"})

#: Grammar for literal metric names: lowercase dotted, >= 2 components.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9][a-z0-9_]*)+$")

#: Grammar for the literal prefix of an f-string metric name.
METRIC_PREFIX_RE = re.compile(r"^[a-z][a-z0-9_.]*\.$")

#: Constructors whose instances fan work out to processes.
POOL_CONSTRUCTORS = frozenset({"SweepRunner", "ProcessPoolExecutor", "Pool"})

#: Variable names assumed to hold a pool even without a visible
#: constructor (parameters like ``runner`` threaded through calls).
POOL_NAME_HINTS = frozenset({"runner", "pool", "sweep", "executor"})

#: np.random constructs that are fine (explicitly seeded generators).
SEEDED_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence"})


def _float_const(node: ast.AST) -> Optional[float]:
    """The node's value when it is a float literal, else ``None``."""
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return node.value
    return None


def _call_name(node: ast.AST) -> Optional[str]:
    """Terminal name of a Call's callee (``SweepRunner`` in both
    ``SweepRunner(...)`` and ``perf.SweepRunner(...)``)."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return None


@rule
class MagicUnitLiteral(Rule):
    """DS101: multiplying/dividing by a raw unit literal.

    ``x * 1e-3`` hides whether the code converts mm to m or W to mW;
    ``x * units.MILLI`` states it.  Only multiplication/division
    operands are flagged — additive tolerances (``peak <= limit + 1e-6``)
    and standalone constant definitions are legitimate.  ``units.py``
    itself, where the multipliers are defined, is exempt.
    """

    code = "DS101"
    summary = "raw magic-unit literal; use the named units constant"
    visits = (ast.BinOp,)

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_library and ctx.library_rel != "units.py"

    def visit(self, node: ast.BinOp, ctx: FileContext) -> Iterator[Finding]:
        if not isinstance(node.op, (ast.Mult, ast.Div)):
            return
        for side in (node.left, node.right):
            value = _float_const(side)
            if value is not None and value in UNIT_LITERALS:
                yield Finding(
                    self.code,
                    ctx.path,
                    side.lineno,
                    side.col_offset,
                    f"magic unit literal {value!r}; use "
                    f"{UNIT_LITERALS[value]} from repro.units",
                )


@rule
class FloatEqualityOnQuantity(Rule):
    """DS102: ``==`` / ``!=`` against a float literal.

    Float equality on a physical quantity is almost always a bug; where
    it is an *exact sentinel* (a power-gated frequency of exactly 0.0),
    the code must say so — via :func:`repro.units.is_gated` /
    :data:`repro.units.F_GATED`, or an inline
    ``# repro-lint: disable=DS102 - <why exactness holds>`` annotation.
    Integer comparisons are untouched.
    """

    code = "DS102"
    summary = "float-literal equality without a named sentinel"
    visits = (ast.Compare,)

    def visit(self, node: ast.Compare, ctx: FileContext) -> Iterator[Finding]:
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            pair, left = (left, right), right
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in pair:
                value = _float_const(side)
                if value is None:
                    continue
                yield Finding(
                    self.code,
                    ctx.path,
                    node.lineno,
                    node.col_offset,
                    f"float equality against {value!r}; use a named "
                    "sentinel (units.is_gated) or annotate why exact "
                    "comparison holds",
                )
                break


@rule
class BareStdlibRaise(Rule):
    """DS201: raising a bare stdlib exception in library code.

    Callers are promised "everything :mod:`repro` raises derives from
    :class:`repro.errors.ReproError`"; a bare ``ValueError`` escapes
    that contract.  Raise ``ConfigurationError`` / ``InfeasibleError`` /
    ``ConvergenceError`` / ``MappingError`` (or a new subclass) instead.
    """

    code = "DS201"
    summary = "bare stdlib exception raised in library code"
    visits = (ast.Raise,)

    def visit(self, node: ast.Raise, ctx: FileContext) -> Iterator[Finding]:
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in BARE_EXCEPTIONS:
            yield Finding(
                self.code,
                ctx.path,
                node.lineno,
                node.col_offset,
                f"raise of bare {name}; raise a repro.errors.ReproError "
                "subclass instead",
            )


@rule
class MetricNameConvention(Rule):
    """DS301: obs metric names must be literal, dotted, and registered.

    Names recorded through :mod:`repro.obs` feed snapshots, diffs,
    merges and the performance report; a typo'd or drifting name
    silently forks a time series.  Literal names must match the
    ``subsystem.metric`` grammar and appear in the metric manifest
    (``docs/metrics.txt``); f-string names need a literal dotted prefix
    covered by the manifest (``f"store.{name}"`` needs a ``store.``
    entry or wildcard).  The :mod:`repro.obs` implementation itself,
    which plumbs caller-supplied names, is exempt.
    """

    code = "DS301"
    summary = "obs metric name violates grammar or manifest"
    visits = (ast.Call,)

    def applies(self, ctx: FileContext) -> bool:
        if not ctx.in_library or ctx.library_rel is None:
            return False
        return not ctx.library_rel.startswith("obs/")

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in METRIC_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in METRIC_RECEIVERS
        ):
            return
        if not node.args:
            return
        name_arg = node.args[0]
        where = (name_arg.lineno, name_arg.col_offset)
        if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
            name = name_arg.value
            if not METRIC_NAME_RE.match(name):
                yield Finding(
                    self.code,
                    ctx.path,
                    *where,
                    f"metric name {name!r} violates the dotted "
                    "lowercase grammar (subsystem.metric)",
                )
            elif ctx.manifest is not None and not ctx.manifest.covers(name):
                yield Finding(
                    self.code,
                    ctx.path,
                    *where,
                    f"metric name {name!r} is not registered in the "
                    "metric manifest (docs/metrics.txt)",
                )
        elif isinstance(name_arg, ast.JoinedStr):
            prefix = ""
            for part in name_arg.values:
                if isinstance(part, ast.Constant) and isinstance(part.value, str):
                    prefix += part.value
                else:
                    break
            if not prefix or not METRIC_PREFIX_RE.match(prefix):
                yield Finding(
                    self.code,
                    ctx.path,
                    *where,
                    "dynamic metric name needs a literal dotted prefix "
                    "(f\"subsystem.{...}\")",
                )
            elif ctx.manifest is not None and not ctx.manifest.covers_prefix(
                prefix
            ):
                yield Finding(
                    self.code,
                    ctx.path,
                    *where,
                    f"metric name prefix {prefix!r} has no entry in the "
                    "metric manifest (docs/metrics.txt)",
                )
        else:
            yield Finding(
                self.code,
                ctx.path,
                *where,
                "metric name must be a string literal or an f-string "
                "with a literal dotted prefix",
            )


@rule
class SpawnUnsafeWorker(Rule):
    """DS401: spawn-unsafe constructs handed to process pools.

    Under the ``spawn`` start method, workers re-import the module: a
    lambda or closure cannot be pickled across, and a worker mutating
    module-level state via ``global`` updates the *worker's* copy, not
    the parent's.  Cell functions given to :class:`SweepRunner.map
    <repro.perf.sweep.SweepRunner>` or ``ProcessPoolExecutor`` must be
    module-level callables (or ``functools.partial`` over one) with
    results returned, not written to globals.  Applies to tests too —
    a spawn-unsafe fixture hides real worker bugs.
    """

    code = "DS401"
    summary = "spawn-unsafe callable handed to a process pool"
    visits = (ast.Call,)

    def applies(self, ctx: FileContext) -> bool:
        return True

    def begin_file(self, ctx: FileContext) -> None:
        self.pool_names: set[str] = set()
        self.nested_defs: set[str] = set()
        self.module_defs: dict[str, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                if _call_name(node.value) in POOL_CONSTRUCTORS:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            self.pool_names.add(target.id)
            elif isinstance(node, ast.withitem):
                if _call_name(node.context_expr) in POOL_CONSTRUCTORS and isinstance(
                    node.optional_vars, ast.Name
                ):
                    self.pool_names.add(node.optional_vars.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if child is not node and isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self.nested_defs.add(child.name)
        if isinstance(ctx.tree, ast.Module):
            for stmt in ctx.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.module_defs[stmt.name] = stmt

    def _is_pool_dispatch(self, node: ast.Call) -> bool:
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and func.attr in ("map", "submit")
        ):
            return False
        recv = func.value
        if _call_name(recv) in POOL_CONSTRUCTORS:
            return True
        if isinstance(recv, ast.Name):
            return recv.id in self.pool_names or recv.id in POOL_NAME_HINTS
        if isinstance(recv, ast.Attribute):
            return recv.attr in self.pool_names or recv.attr in POOL_NAME_HINTS
        return False

    def _offences(self, arg: ast.AST) -> Iterator[str]:
        if isinstance(arg, ast.Lambda):
            yield "lambda cannot be pickled to a spawn worker"
        elif isinstance(arg, ast.Name):
            if arg.id in self.nested_defs:
                yield (
                    f"closure {arg.id!r} (defined inside a function) "
                    "cannot be pickled to a spawn worker"
                )
            else:
                target = self.module_defs.get(arg.id)
                if target is not None and any(
                    isinstance(child, ast.Global) for child in ast.walk(target)
                ):
                    yield (
                        f"worker {arg.id!r} mutates module-level state via "
                        "'global'; mutations are lost in spawn workers"
                    )
        elif _call_name(arg) == "partial" and isinstance(arg, ast.Call):
            for inner in (*arg.args, *(kw.value for kw in arg.keywords)):
                yield from self._offences(inner)

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        if not self._is_pool_dispatch(node):
            return
        for arg in (*node.args, *(kw.value for kw in node.keywords)):
            for reason in self._offences(arg):
                yield Finding(
                    self.code,
                    ctx.path,
                    arg.lineno,
                    arg.col_offset,
                    reason,
                )


@rule
class NondeterministicModelCode(Rule):
    """DS402: wall-clock / unseeded randomness outside :mod:`repro.obs`.

    Experiment results are content-addressed and fingerprinted
    (:mod:`repro.store`, ``runs.jsonl``); a model or experiment reading
    ``time.time()`` or ``random.*`` produces irreproducible payloads
    that silently defeat the cache and the provenance ledger.
    ``time.perf_counter`` (duration measurement) and explicitly seeded
    ``np.random.default_rng(seed)`` generators are fine; the
    :mod:`repro.obs` layer, which needs epoch anchors for trace
    re-basing, is exempt.
    """

    code = "DS402"
    summary = "nondeterminism in model/experiment code"
    visits = (ast.Call,)

    def applies(self, ctx: FileContext) -> bool:
        if not ctx.in_library or ctx.library_rel is None:
            return False
        return not ctx.library_rel.startswith(("obs/", "lint/"))

    def visit(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        where = (func.lineno, func.col_offset)
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "time" and func.attr == "time":
                yield Finding(
                    self.code,
                    ctx.path,
                    *where,
                    "time.time() in model/experiment code breaks "
                    "fingerprint reproducibility; use time.perf_counter "
                    "for durations or pass timestamps in",
                )
            elif base.id == "random":
                yield Finding(
                    self.code,
                    ctx.path,
                    *where,
                    f"random.{func.attr} is unseeded global randomness; "
                    "use np.random.default_rng(seed)",
                )
            elif base.id == "datetime" and func.attr in (
                "now",
                "utcnow",
                "today",
            ):
                yield Finding(
                    self.code,
                    ctx.path,
                    *where,
                    f"datetime.{func.attr}() reads the wall clock; pass "
                    "timestamps in explicitly",
                )
        elif (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in ("np", "numpy")
            and func.attr not in SEEDED_RANDOM_OK
        ):
            yield Finding(
                self.code,
                ctx.path,
                *where,
                f"np.random.{func.attr} uses the unseeded global "
                "generator; use np.random.default_rng(seed)",
            )


def collect_metric_names(
    trees: list[tuple[str, ast.AST]],
) -> tuple[set[str], set[str]]:
    """Statically harvest metric names from obs call sites.

    Returns ``(literal_names, fstring_prefixes)`` across the given
    ``(path, tree)`` pairs — the generator behind
    ``darksilicon lint --emit-manifest``, which seeds
    ``docs/metrics.txt``.
    """
    names: set[str] = set()
    prefixes: set[str] = set()
    for _, tree in trees:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in METRIC_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in METRIC_RECEIVERS
                and node.args
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                names.add(arg.value)
            elif isinstance(arg, ast.JoinedStr):
                prefix = ""
                for part in arg.values:
                    if isinstance(part, ast.Constant) and isinstance(
                        part.value, str
                    ):
                        prefix += part.value
                    else:
                        break
                if prefix:
                    prefixes.add(prefix)
    return names, prefixes
