"""Phase 1 of the whole-program lint: per-module summaries.

:func:`summarize_source` distils one parsed file into a JSON-ready
:class:`ModuleSummary` — everything phase 2 (:mod:`repro.lint.callgraph`
linking plus the :mod:`repro.lint.dataflow` rule families) needs to
reason *across* files without re-reading them:

* the import map (local name -> qualified target), so call references
  written as ``units.ghz`` or ``ThermalSafePower`` resolve to one
  program-wide qualified name;
* per-function dimension facts for DS5xx — parameter dimensions (from
  :data:`repro.units.ANNOTATION_DIMENSIONS` aliases or
  :data:`repro.units.SUFFIX_DIMENSIONS` name suffixes), assignments,
  add/sub/compare operand terms and call sites, all expressed in a tiny
  serialisable expression IR (*dterms*, below);
* per-class lock facts for DS6xx — which ``self`` attributes are
  written where, whether the write sits lexically inside a
  ``with self.<lock>`` block, and the intra-class call sites needed to
  decide whether a private method always runs with the lock held;
* resource lifecycle facts for DS7xx — start/stop/open/close events,
  ``with``-managed names and escapes (returns, stores, argument passes);
* spawn-dispatch sites (workers handed to process pools) and the
  harvested metric names/prefixes used by the stale-manifest check;
* the file's inline-suppression map, so phase-2 findings respect
  ``# repro-lint: disable=DSxxx`` comments exactly like phase-1 ones.

Summaries are content-addressed: :class:`SummaryCache` stores the
summary *and* the file's phase-1 findings in a
:class:`repro.store.ArtifactStore` keyed by the source's SHA-256 (plus
the manifest digest, which DS301 findings depend on), so a warm lint
run skips parsing and summarising unchanged files entirely.

The dterm IR (plain lists, JSON-stable)::

    ["dim", "hz"]                 # a known dimension label
    ["var", "x"] / ["var", "units.F_GATED"]   # a (dotted) name as written
    ["call", "units.ghz", [args], {kwargs}, line, col]
    ["binop", "+", left, right]   # add/sub whose dim is its operands'
    ["unknown"]
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro import units

#: Summary schema version: bump to invalidate every cached summary.
SUMMARY_VERSION = 1

#: Cache fingerprint (see ArtifactStore.get_payload): encodes the
#: summary schema and the rule-engine generation, so either bumping
#: invalidates warm summaries.
CACHE_FINGERPRINT = f"repro-lint-cache-v{SUMMARY_VERSION}"

#: Method names that mutate their receiver in place — a call
#: ``self.attr.append(...)`` counts as a *write* to ``attr`` for the
#: DS601 lock-discipline analysis.
MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
        "setdefault",
        "write",
    }
)

#: Receiver terminal names treated as a metric registry when harvesting
#: names for the stale-manifest check.  Wider than DS301's enforcement
#: set on purpose: the obs layer itself records through locals named
#: ``registry``/``_registry``, and those emissions must count as "used".
HARVEST_RECEIVERS = frozenset({"obs", "REGISTRY", "registry", "_registry"})

#: ``.start()``-style calls that begin a must-stop resource.
START_METHODS = frozenset({"start"})

#: Calls that end a must-stop resource.
STOP_METHODS = frozenset({"stop", "shutdown", "server_close", "close", "join"})

#: Free functions / methods whose *return value* is a running resource.
SERVER_FACTORIES = frozenset({"start_metrics_server", "serve_prometheus"})

#: Constructors that open an underlying file handle (DS702).
OPENERS = frozenset({"JsonlSink", "open"})


def _dotted_name(node: ast.AST) -> Optional[str]:
    """The expression as a dotted name (``units.ghz``), when it is one."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def suffix_dimension(name: str) -> Optional[str]:
    """The dimension a name suffix implies, or ``None``.

    Matched longest-suffix-first; a name that *is* the bare suffix
    (``s``) does not match — only ``interval_s`` style names do.
    """
    terminal = name.rsplit(".", 1)[-1]
    for suffix in sorted(units.SUFFIX_DIMENSIONS, key=len, reverse=True):
        if terminal.endswith(suffix) and len(terminal) > len(suffix):
            return units.SUFFIX_DIMENSIONS[suffix]
    return None


def _annotation_dimension(annotation: Optional[ast.AST]) -> Optional[str]:
    """Dimension claimed by a ``units.Seconds``-style annotation."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Subscript):
        outer = _dotted_name(annotation.value)
        if outer is not None and outer.rsplit(".", 1)[-1] == "Optional":
            return _annotation_dimension(annotation.slice)
        return None
    name = _dotted_name(annotation)
    if name is None:
        return None
    return units.ANNOTATION_DIMENSIONS.get(name.rsplit(".", 1)[-1])


@dataclass
class ModuleSummary:
    """Everything phase 2 needs to know about one source file."""

    path: str
    module: str
    in_library: bool
    imports: dict[str, str] = field(default_factory=dict)
    module_globals: list[str] = field(default_factory=list)
    #: qualname ("func" / "Class.method") -> function fact dict.
    functions: dict[str, dict] = field(default_factory=dict)
    #: class name -> lock/attribute fact dict.
    classes: dict[str, dict] = field(default_factory=dict)
    spawn_dispatches: list[dict] = field(default_factory=list)
    metric_names: list[str] = field(default_factory=list)
    metric_prefixes: list[str] = field(default_factory=list)
    #: line -> suppressed codes ("*" = all), mirrored from the engine.
    suppressions: dict[int, list[str]] = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "version": SUMMARY_VERSION,
            "path": self.path,
            "module": self.module,
            "in_library": self.in_library,
            "imports": self.imports,
            "module_globals": self.module_globals,
            "functions": self.functions,
            "classes": self.classes,
            "spawn_dispatches": self.spawn_dispatches,
            "metric_names": self.metric_names,
            "metric_prefixes": self.metric_prefixes,
            "suppressions": {
                str(line): codes for line, codes in self.suppressions.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ModuleSummary":
        return cls(
            path=payload["path"],
            module=payload["module"],
            in_library=payload["in_library"],
            imports=payload["imports"],
            module_globals=payload["module_globals"],
            functions=payload["functions"],
            classes=payload["classes"],
            spawn_dispatches=payload["spawn_dispatches"],
            metric_names=payload["metric_names"],
            metric_prefixes=payload["metric_prefixes"],
            suppressions={
                int(line): codes
                for line, codes in payload["suppressions"].items()
            },
        )


class _FunctionSummarizer(ast.NodeVisitor):
    """Collects one function body's dterm/lock/resource facts."""

    def __init__(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: Optional[str],
    ) -> None:
        self.node = node
        self.class_name = class_name
        self.is_method = class_name is not None
        args = node.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if self.is_method and all_args and all_args[0].arg in ("self", "cls"):
            all_args = all_args[1:]
        self.params = [a.arg for a in all_args]
        self.flexible = args.vararg is not None or args.kwarg is not None
        self.param_dims: dict[str, str] = {}
        for arg in all_args:
            dim = _annotation_dimension(arg.annotation) or suffix_dimension(
                arg.arg
            )
            if dim is not None:
                self.param_dims[arg.arg] = dim
        self.assigns: list[list] = []
        self.binops: list[dict] = []
        self.compares: list[dict] = []
        self.calls: list[dict] = []
        self.returns: list[list] = []
        self.global_writes: list[str] = []
        self.attr_writes: list[dict] = []
        self.self_calls: list[dict] = []
        self.lock_attrs: set[str] = set()
        self.starts: list[dict] = []
        self.stops: list[str] = []
        self.opens: list[dict] = []
        self.escapes: set[str] = set()
        self.with_vars: set[str] = set()
        self._lock_depth = 0
        self._global_names: set[str] = set()
        for stmt in node.body:
            self.visit(stmt)

    # -- dterm extraction ---------------------------------------------

    def _dterm(self, node: ast.AST) -> list:
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = _dotted_name(node)
            if dotted is not None and not dotted.startswith("self."):
                return ["var", dotted]
            if dotted is not None:
                # self.<attr>: keep the terminal for suffix inference.
                return ["var", dotted]
            return ["unknown"]
        if isinstance(node, ast.Call):
            callee = _dotted_name(node.func)
            if callee is None:
                return ["unknown"]
            term = [
                "call",
                callee,
                [self._dterm(a) for a in node.args],
                {
                    kw.arg: self._dterm(kw.value)
                    for kw in node.keywords
                    if kw.arg is not None
                },
                node.lineno,
                node.col_offset,
            ]
            return term
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            op = "+" if isinstance(node.op, ast.Add) else "-"
            return ["binop", op, self._dterm(node.left), self._dterm(node.right)]
        if isinstance(node, ast.UnaryOp):
            return self._dterm(node.operand)
        return ["unknown"]

    # -- expression visitors ------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs are opaque to the interprocedural pass.
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_Global(self, node: ast.Global) -> None:
        self._global_names.update(node.names)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self.binops.append(
                {
                    "op": "+" if isinstance(node.op, ast.Add) else "-",
                    "l": self._dterm(node.left),
                    "r": self._dterm(node.right),
                    "ln": node.lineno,
                    "col": node.col_offset,
                }
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(
                op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
            ):
                self.compares.append(
                    {
                        "op": type(op).__name__,
                        "l": self._dterm(left),
                        "r": self._dterm(right),
                        "ln": node.lineno,
                        "col": node.col_offset,
                    }
                )
            left = right
        self.generic_visit(node)

    def _record_assign_target(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.assigns.append([target.id, self._dterm(value)])
            # v = SnapshotSampler(...).start()  /  v = start_metrics_server(...)
            started = self._started_resource(value)
            if started is not None:
                self.starts.append(
                    {
                        "kind": "var",
                        "var": target.id,
                        "what": started,
                        "ln": value.lineno,
                        "col": value.col_offset,
                    }
                )
            opened = self._opened_resource(value)
            if opened is not None:
                self.opens.append(
                    {
                        "var": target.id,
                        "what": opened,
                        "ln": value.lineno,
                        "col": value.col_offset,
                    }
                )
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # Stores into attributes/containers make the value escape.
            if isinstance(value, ast.Name):
                self.escapes.add(value.id)
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.attr_writes.append(
                    {
                        "attr": target.attr,
                        "ln": target.lineno,
                        "col": target.col_offset,
                        "locked": self._lock_depth > 0,
                        "kind": "assign",
                    }
                )
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Attribute
            ):
                inner = target.value
                if (
                    isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                ):
                    self.attr_writes.append(
                        {
                            "attr": inner.attr,
                            "ln": target.lineno,
                            "col": target.col_offset,
                            "locked": self._lock_depth > 0,
                            "kind": "mutate",
                        }
                    )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_assign_target(element, value)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_assign_target(target, node.value)
            if isinstance(target, ast.Name) and target.id in self._global_names:
                self.global_writes.append(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            dim = _annotation_dimension(node.annotation)
            if dim is not None:
                self.assigns.append([node.target.id, ["dim", dim]])
            elif node.value is not None:
                self._record_assign_target(node.target, node.value)
        elif node.value is not None:
            self._record_assign_target(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Name) and target.id in self._global_names:
            self.global_writes.append(target.id)
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.attr_writes.append(
                {
                    "attr": target.attr,
                    "ln": target.lineno,
                    "col": target.col_offset,
                    "locked": self._lock_depth > 0,
                    "kind": "assign",
                }
            )
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.returns.append(self._dterm(node.value))
            if isinstance(node.value, ast.Name):
                self.escapes.add(node.value.id)
            elif isinstance(node.value, ast.Call):
                # ``return self`` chains and wrapped handles escape too.
                for arg in node.value.args:
                    if isinstance(arg, ast.Name):
                        self.escapes.add(arg.id)
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        if isinstance(node.value, ast.Name):
            self.escapes.add(node.value.id)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        lockish = 0
        for item in node.items:
            expr = item.context_expr
            dotted = _dotted_name(expr)
            if dotted is not None and "lock" in dotted.rsplit(".", 1)[-1].lower():
                lockish += 1
                if dotted.startswith("self."):
                    self.lock_attrs.add(dotted.split(".", 1)[1])
            if dotted is not None and not dotted.startswith("self."):
                self.with_vars.add(dotted)
            if isinstance(item.optional_vars, ast.Name):
                self.with_vars.add(item.optional_vars.id)
            # ``with SnapshotSampler(...):`` manages the resource itself.
            if isinstance(expr, ast.Call):
                name = _dotted_name(expr.func)
                if name is not None:
                    terminal = name.rsplit(".", 1)[-1]
                    if terminal in OPENERS or terminal in SERVER_FACTORIES:
                        if isinstance(item.optional_vars, ast.Name):
                            self.with_vars.add(item.optional_vars.id)
        if lockish:
            self._lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if lockish:
            self._lock_depth -= 1
        for item in node.items:
            self.visit(item.context_expr)

    visit_AsyncWith = visit_With

    def visit_Expr(self, node: ast.Expr) -> None:
        # A server factory whose handle is discarded outright can never
        # be stopped — record it with no variable (DS701 always fires).
        value = node.value
        if isinstance(value, ast.Call):
            name = _dotted_name(value.func)
            if (
                name is not None
                and name.rsplit(".", 1)[-1] in SERVER_FACTORIES
            ):
                self.starts.append(
                    {
                        "kind": "var",
                        "var": None,
                        "what": name.rsplit(".", 1)[-1],
                        "ln": value.lineno,
                        "col": value.col_offset,
                    }
                )
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------

    def _started_resource(self, node: ast.AST) -> Optional[str]:
        """Display text when ``node`` evaluates to a running resource."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in START_METHODS
            and isinstance(func.value, ast.Call)
        ):
            # Constructor-chained start: SnapshotSampler(...).start()
            inner = _dotted_name(func.value.func)
            if inner is not None:
                return f"{inner.rsplit('.', 1)[-1]}().start()"
        name = _dotted_name(func)
        if name is not None and name.rsplit(".", 1)[-1] in SERVER_FACTORIES:
            return name.rsplit(".", 1)[-1]
        return None

    def _opened_resource(self, node: ast.AST) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        name = _dotted_name(node.func)
        if name is None:
            return None
        terminal = name.rsplit(".", 1)[-1]
        if terminal in OPENERS:
            return terminal
        return None

    def visit_Call(self, node: ast.Call) -> None:
        callee = _dotted_name(node.func)
        if callee is not None:
            self.calls.append(
                {
                    "callee": callee,
                    "args": [self._dterm(a) for a in node.args],
                    "kw": {
                        kw.arg: self._dterm(kw.value)
                        for kw in node.keywords
                        if kw.arg is not None
                    },
                    "ln": node.lineno,
                    "col": node.col_offset,
                    "star": any(
                        isinstance(a, ast.Starred) for a in node.args
                    )
                    or any(kw.arg is None for kw in node.keywords),
                }
            )
            terminal = callee.rsplit(".", 1)[-1]
            receiver = callee.rsplit(".", 1)[0] if "." in callee else None
            # Resource lifecycle events.
            if callee == "tracemalloc.start":
                self.starts.append(
                    {
                        "kind": "tracemalloc",
                        "var": None,
                        "what": "tracemalloc.start()",
                        "ln": node.lineno,
                        "col": node.col_offset,
                    }
                )
            elif callee == "tracemalloc.stop":
                self.stops.append("tracemalloc")
            elif terminal in STOP_METHODS and receiver is not None:
                self.stops.append(receiver)
            elif terminal in SERVER_FACTORIES:
                # A factory whose handle is discarded leaks the server;
                # assignment targets were recorded by visit_Assign.
                pass
            elif (
                terminal in START_METHODS
                and receiver is not None
                and receiver != "self"
                and not receiver.startswith("self.")
            ):
                self.starts.append(
                    {
                        "kind": "var",
                        "var": receiver,
                        "what": f"{receiver}.start()",
                        "ln": node.lineno,
                        "col": node.col_offset,
                    }
                )
            # self-calls for the lock-held fixpoint.
            if callee.startswith("self.") and callee.count(".") == 1:
                self.self_calls.append(
                    {
                        "method": callee.split(".", 1)[1],
                        "locked": self._lock_depth > 0,
                        "ln": node.lineno,
                    }
                )
            # Mutator calls on self attributes are writes (DS601).
            if (
                callee.startswith("self.")
                and callee.count(".") == 2
                and terminal in MUTATORS
            ):
                self.attr_writes.append(
                    {
                        "attr": callee.split(".")[1],
                        "ln": node.lineno,
                        "col": node.col_offset,
                        "locked": self._lock_depth > 0,
                        "kind": "mutate",
                    }
                )
        # Names passed as arguments escape the function's custody.
        for arg in node.args:
            if isinstance(arg, ast.Name):
                self.escapes.add(arg.id)
        for kw in node.keywords:
            if isinstance(kw.value, ast.Name):
                self.escapes.add(kw.value.id)
        self.generic_visit(node)

    def facts(self) -> dict:
        return {
            "ln": self.node.lineno,
            "col": self.node.col_offset,
            "params": self.params,
            "flexible": self.flexible,
            "param_dims": self.param_dims,
            "assigns": self.assigns,
            "binops": self.binops,
            "compares": self.compares,
            "calls": self.calls,
            "returns": self.returns,
            "global_writes": sorted(set(self.global_writes)),
            "resources": {
                "starts": self.starts,
                "stops": sorted(set(self.stops)),
                "opens": self.opens,
                "escapes": sorted(self.escapes),
                "with": sorted(self.with_vars),
            },
        }


def _module_name(path: str, library_rel: Optional[str]) -> str:
    if library_rel is not None:
        stem = library_rel[: -len(".py")] if library_rel.endswith(".py") else library_rel
        dotted = stem.replace("/", ".")
        if dotted == "__init__" or not dotted:
            return "repro"
        if dotted.endswith(".__init__"):
            dotted = dotted[: -len(".__init__")]
        return f"repro.{dotted}"
    parts = [p for p in path.split("/") if p]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    return ".".join(parts) or path


def _imports(tree: ast.Module, module: str) -> dict[str, str]:
    """Local name -> qualified target for every import statement."""
    out: dict[str, str] = {}
    package = module.rsplit(".", 1)[0] if "." in module else module
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    out[alias.asname] = alias.name
                else:
                    out[alias.name.split(".", 1)[0]] = alias.name.split(
                        ".", 1
                    )[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = module.split(".")
                # level 1 = current package, 2 = parent, ...
                anchor = base_parts[: len(base_parts) - node.level]
                base = ".".join(anchor + ([node.module] if node.module else []))
            else:
                base = node.module or package
            for alias in node.names:
                local = alias.asname or alias.name
                out[local] = f"{base}.{alias.name}" if base else alias.name
    return out


def _spawn_dispatches(tree: ast.Module) -> list[dict]:
    """Workers handed to process pools, as written (for DS602)."""
    from repro.lint.rules import POOL_CONSTRUCTORS, POOL_NAME_HINTS

    pool_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            value = node.value
            if (
                isinstance(value, ast.Call)
                and _dotted_name(value.func) is not None
                and _dotted_name(value.func).rsplit(".", 1)[-1]
                in POOL_CONSTRUCTORS
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        pool_names.add(target.id)
        elif isinstance(node, ast.withitem):
            expr = node.context_expr
            if (
                isinstance(expr, ast.Call)
                and _dotted_name(expr.func) is not None
                and _dotted_name(expr.func).rsplit(".", 1)[-1]
                in POOL_CONSTRUCTORS
                and isinstance(node.optional_vars, ast.Name)
            ):
                pool_names.add(node.optional_vars.id)

    def is_pool(recv: ast.AST) -> bool:
        dotted = _dotted_name(recv)
        if isinstance(recv, ast.Call):
            name = _dotted_name(recv.func)
            return (
                name is not None
                and name.rsplit(".", 1)[-1] in POOL_CONSTRUCTORS
            )
        if dotted is None:
            return False
        terminal = dotted.rsplit(".", 1)[-1]
        return terminal in pool_names or terminal in POOL_NAME_HINTS

    dispatches: list[dict] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and func.attr in ("map", "submit")
        ):
            continue
        if not is_pool(func.value):
            continue
        for arg in (*node.args, *(kw.value for kw in node.keywords)):
            worker = None
            if isinstance(arg, (ast.Name, ast.Attribute)):
                worker = _dotted_name(arg)
            elif isinstance(arg, ast.Call):
                name = _dotted_name(arg.func)
                if name is not None and name.rsplit(".", 1)[-1] == "partial":
                    if arg.args and isinstance(
                        arg.args[0], (ast.Name, ast.Attribute)
                    ):
                        worker = _dotted_name(arg.args[0])
            if worker is not None:
                dispatches.append(
                    {
                        "worker": worker,
                        "ln": arg.lineno,
                        "col": arg.col_offset,
                    }
                )
    return dispatches


def _metric_usage(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names/prefixes recorded through any registry-like receiver."""
    from repro.lint.rules import METRIC_METHODS

    names: set[str] = set()
    prefixes: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in METRIC_METHODS
            and node.args
        ):
            continue
        receiver = _dotted_name(func.value)
        if receiver is None:
            continue
        if receiver.rsplit(".", 1)[-1] not in HARVEST_RECEIVERS:
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            names.add(arg.value)
        elif isinstance(arg, ast.JoinedStr):
            prefix = ""
            for part in arg.values:
                if isinstance(part, ast.Constant) and isinstance(
                    part.value, str
                ):
                    prefix += part.value
                else:
                    break
            if prefix:
                prefixes.add(prefix)
    return names, prefixes


def summarize_source(
    source: str,
    path: str,
    tree: ast.Module,
    *,
    library_rel: Optional[str],
    in_library: bool,
    suppressions: Optional[dict[int, set[str]]] = None,
) -> ModuleSummary:
    """Build one file's :class:`ModuleSummary` from its parsed tree."""
    module = _module_name(path, library_rel)
    summary = ModuleSummary(
        path=path,
        module=module,
        in_library=in_library,
        imports=_imports(tree, module),
        spawn_dispatches=_spawn_dispatches(tree),
    )
    names, prefixes = _metric_usage(tree)
    summary.metric_names = sorted(names)
    summary.metric_prefixes = sorted(prefixes)
    if suppressions:
        summary.suppressions = {
            line: sorted(codes) for line, codes in suppressions.items()
        }
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    summary.module_globals.append(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            summary.module_globals.append(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fs = _FunctionSummarizer(stmt, class_name=None)
            summary.functions[stmt.name] = fs.facts()
        elif isinstance(stmt, ast.ClassDef):
            class_facts: dict[str, Any] = {
                "ln": stmt.lineno,
                "methods": [],
                "lock_attrs": [],
                "attr_writes": [],
                "self_calls": [],
            }
            lock_attrs: set[str] = set()
            for member in stmt.body:
                if not isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                fs = _FunctionSummarizer(member, class_name=stmt.name)
                summary.functions[f"{stmt.name}.{member.name}"] = fs.facts()
                class_facts["methods"].append(member.name)
                lock_attrs.update(fs.lock_attrs)
                for write in fs.attr_writes:
                    class_facts["attr_writes"].append(
                        {**write, "method": member.name}
                    )
                for call in fs.self_calls:
                    class_facts["self_calls"].append(
                        {**call, "caller": member.name}
                    )
            class_facts["lock_attrs"] = sorted(lock_attrs)
            summary.classes[stmt.name] = class_facts
    summary.module_globals = sorted(set(summary.module_globals))
    return summary


# -- content-addressed summary cache ----------------------------------


def content_hash(source: str) -> str:
    """SHA-256 of the file's text — the cache coordinate."""
    return hashlib.sha256(source.encode()).hexdigest()


class SummaryCache:
    """Warm-run summary + findings cache on a :class:`ArtifactStore`.

    One envelope per ``(path, content-hash, manifest-digest)``: the
    payload holds the module summary *and* the file's phase-1 findings,
    so a warm run skips parsing entirely for unchanged files.  The
    engine-generation fingerprint (:data:`CACHE_FINGERPRINT`) is
    verified on read, so bumping :data:`SUMMARY_VERSION` invalidates
    every stale envelope in place.
    """

    EXPERIMENT = "lint_summary"

    def __init__(self, root) -> None:
        from repro.store import ArtifactStore

        self.store = ArtifactStore(root)
        self.hits = 0
        self.misses = 0

    def _params(self, path: str, digest: str, manifest_digest: str) -> str:
        return json.dumps(
            {"path": path, "sha256": digest, "manifest": manifest_digest},
            sort_keys=True,
        )

    def get(
        self, path: str, digest: str, manifest_digest: str
    ) -> Optional[dict]:
        payload = self.store.get_payload(
            self.EXPERIMENT,
            self._params(path, digest, manifest_digest),
            CACHE_FINGERPRINT,
        )
        if payload is None or payload.get("version") != SUMMARY_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(
        self,
        path: str,
        digest: str,
        manifest_digest: str,
        summary: ModuleSummary,
        findings: list,
    ) -> None:
        payload = {
            "version": SUMMARY_VERSION,
            "summary": summary.to_payload(),
            "findings": [f.to_dict() for f in findings],
        }
        self.store.put_payload(
            self.EXPERIMENT,
            self._params(path, digest, manifest_digest),
            CACHE_FINGERPRINT,
            payload,
        )
