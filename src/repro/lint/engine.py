"""The rule engine: one AST pass per file, rules as plugins.

A :class:`Rule` subclass declares the node types it wants
(:attr:`Rule.visits`); :func:`lint_source` parses the file once, walks
the tree once, and dispatches each node to every subscribed rule.  Rules
yield :class:`Finding` objects; the engine then drops findings silenced
by an inline ``# repro-lint: disable=DSxxx`` comment on the same line,
and — at the :func:`lint_paths` level — findings ratified in the
baseline file (see :mod:`repro.lint.baseline`).

Scoping: conventions like "no magic unit literals" only bind *library*
code, not tests or fixtures, so every rule sees a :class:`FileContext`
that knows whether the file lives under ``src/repro`` and its path
relative to the package root (``ctx.library_rel``), letting rules skip
``units.py`` (the one place unit literals are defined) or the
:mod:`repro.obs` implementation (the one place metric names are plumbed
rather than emitted).
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import ConfigurationError

#: Inline suppression comment grammar.  ``disable`` with no codes
#: silences every rule on the line; a comma-separated code list
#: silences only those.  Anything after the codes (``- reason``) is the
#: site's documentation of intent.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+?))?(?:\s+-.*)?$"
)

#: Marker meaning "every code" in a suppression set.
SUPPRESS_ALL = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching.

        Line numbers drift with every unrelated edit, so the baseline
        matches on path + code + message instead.
        """
        return f"{self.path}:{self.code}:{self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class MetricManifest:
    """The checked-in metric-name registry (``docs/metrics.txt``).

    One name per line; ``#`` starts a comment; a trailing ``*`` makes
    the entry a prefix wildcard (``experiment.*`` covers every
    hierarchical span path rooted at ``experiment.``).

    Loaded manifests also remember each entry's line number and whether
    its trailing comment starts with ``keep`` — the inputs to the
    *stale-entry* check (DS302), which flags entries no longer matched
    by any statically harvested metric name.  ``# keep - reason``
    ratifies an entry the harvester cannot see (names emitted by
    external tooling, reserved namespaces).
    """

    def __init__(
        self,
        names: Iterable[str | tuple[str, Optional[int], bool]],
        *,
        path: Optional[str | Path] = None,
    ) -> None:
        self.names: set[str] = set()
        self.prefixes: list[str] = []
        #: (entry text, 1-based line or None, keep flag) per entry.
        self.entries: list[tuple[str, Optional[int], bool]] = []
        self.path = Path(path).as_posix() if path is not None else None
        for item in names:
            if isinstance(item, tuple):
                entry, lineno, keep = item
            else:
                entry, lineno, keep = item, None, False
            self.entries.append((entry, lineno, keep))
            if entry.endswith("*"):
                self.prefixes.append(entry[:-1])
            else:
                self.names.add(entry)

    @classmethod
    def load(cls, path: str | Path) -> "MetricManifest":
        entries = []
        for lineno, raw in enumerate(
            Path(path).read_text().splitlines(), start=1
        ):
            text, _, comment = raw.partition("#")
            line = text.strip()
            if line:
                keep = comment.split()[:1] == ["keep"]
                entries.append((line, lineno, keep))
        return cls(entries, path=path)

    def digest(self) -> str:
        """Content hash of the entries (part of the summary-cache key:
        DS301 findings cached per file depend on the manifest)."""
        blob = "\n".join(
            f"{entry}\t{keep}" for entry, _, keep in self.entries
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def stale_entries(
        self, names: set[str], prefixes: set[str]
    ) -> list[tuple[str, Optional[int]]]:
        """Entries matched by no harvested metric name (DS302 inputs).

        ``names``/``prefixes`` are the statically discovered literal
        names and f-string prefixes.  A concrete entry is live when a
        harvested name or prefix covers it; a wildcard ``p.*`` is live
        when a harvested name falls under it *or* equals ``p`` itself
        (span paths nest under their span's own name), or a harvested
        prefix overlaps it in either direction.  ``# keep`` entries are
        never stale.
        """
        out: list[tuple[str, Optional[int]]] = []
        for entry, lineno, keep in self.entries:
            if keep:
                continue
            if entry.endswith("*"):
                stem = entry[:-1]
                live = any(
                    n.startswith(stem)
                    or stem == n
                    or stem.startswith(n + ".")
                    for n in names
                ) or any(
                    d.startswith(stem) or stem.startswith(d)
                    for d in prefixes
                )
            else:
                live = entry in names or any(
                    entry.startswith(d) for d in prefixes
                )
            if not live:
                out.append((entry, lineno))
        return out

    def covers(self, name: str) -> bool:
        """Whether a concrete metric name is registered."""
        if name in self.names:
            return True
        return any(name.startswith(p) for p in self.prefixes)

    def covers_prefix(self, prefix: str) -> bool:
        """Whether any registered name could start with ``prefix``.

        The static check for f-string names (``f"store.{name}"``): true
        when a concrete entry starts with the prefix, or a wildcard
        overlaps it in either direction.
        """
        if any(name.startswith(prefix) for name in self.names):
            return True
        return any(
            p.startswith(prefix) or prefix.startswith(p) for p in self.prefixes
        )


@dataclass
class FileContext:
    """Everything a rule may need about the file being linted."""

    path: str
    tree: ast.AST
    source: str
    in_library: bool
    #: Path relative to the ``repro`` package root when ``in_library``
    #: (``"power/model.py"``), else ``None``.
    library_rel: Optional[str]
    manifest: Optional[MetricManifest] = None
    #: Scratch space for per-file rule state (keyed by rule code).
    state: dict = field(default_factory=dict)


class Rule:
    """Base class for one DS rule.

    Subclasses set :attr:`code`, :attr:`summary` and :attr:`visits`, and
    implement :meth:`visit`.  One instance is created per file, so
    per-file state can live on ``self``.
    """

    code: str = ""
    summary: str = ""
    #: AST node classes this rule wants dispatched to :meth:`visit`.
    visits: tuple = ()

    def applies(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (default: library)."""
        return ctx.in_library

    def begin_file(self, ctx: FileContext) -> None:
        """Per-file setup (e.g. a name-collection prepass)."""

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one dispatched node."""
        return iter(())


#: The plugin registry, in registration order.
_RULES: list[type[Rule]] = []


def rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a rule plugin."""
    if not cls.code:
        raise ConfigurationError(f"rule {cls.__name__} has no code")
    if any(existing.code == cls.code for existing in _RULES):
        raise ConfigurationError(f"duplicate rule code {cls.code}")
    _RULES.append(cls)
    return cls


def all_rules() -> list[type[Rule]]:
    """Every registered rule class, in registration order."""
    return list(_RULES)


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> codes silenced by an inline comment there."""
    silenced: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            codes = match.group("codes")
            if codes is None:
                silenced.setdefault(tok.start[0], set()).add(SUPPRESS_ALL)
            else:
                silenced.setdefault(tok.start[0], set()).update(
                    c.strip() for c in codes.split(",") if c.strip()
                )
    except tokenize.TokenError:  # pragma: no cover - truncated source
        pass
    return silenced


def _library_rel(path: Path) -> Optional[str]:
    """Path relative to the ``repro`` package when under ``src/repro``."""
    parts = path.parts
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            return "/".join(parts[i + 2 :])
    return None


def lint_source(
    source: str,
    path: str | Path,
    *,
    manifest: Optional[MetricManifest] = None,
    library: Optional[bool] = None,
    select: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Lint one file's text through every registered rule.

    Args:
        source: the file's contents.
        path: its (reported) path; also drives library scoping.
        manifest: the metric manifest for DS301 (``None``: DS301 checks
            grammar only).
        library: force library scoping on/off (``None``: infer from the
            path containing ``src/repro``).
        select: restrict to these rule codes (``None``: all).

    Returns:
        Findings not silenced by inline suppressions, in source order.
    """
    path = Path(path)
    rel = _library_rel(path)
    in_library = rel is not None if library is None else library
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise ConfigurationError(f"cannot parse {path}: {exc}") from exc
    ctx = FileContext(
        path=path.as_posix(),
        tree=tree,
        source=source,
        in_library=in_library,
        library_rel=rel if rel is not None else (path.name if in_library else None),
        manifest=manifest,
    )
    findings = _run_rules(ctx, select)
    silenced = _suppressions(source)
    kept = _apply_suppressions(findings, silenced)
    kept.sort(key=lambda f: (f.line, f.col, f.code))
    return kept


def _run_rules(
    ctx: FileContext, select: Optional[Sequence[str]] = None
) -> list[Finding]:
    """Dispatch one parsed file through every registered per-file rule."""
    dispatch: dict[type, list[Rule]] = {}
    for cls in _RULES:
        if select is not None and cls.code not in select:
            continue
        instance = cls()
        if not instance.applies(ctx):
            continue
        instance.begin_file(ctx)
        for node_type in instance.visits:
            dispatch.setdefault(node_type, []).append(instance)
    findings: list[Finding] = []
    if dispatch:
        for node in ast.walk(ctx.tree):
            for instance in dispatch.get(type(node), ()):
                findings.extend(instance.visit(node, ctx))
    return findings


def _apply_suppressions(
    findings: Iterable[Finding], silenced: dict[int, set[str]]
) -> list[Finding]:
    return [
        f
        for f in findings
        if not (
            f.line in silenced
            and (SUPPRESS_ALL in silenced[f.line] or f.code in silenced[f.line])
        )
    ]


def _phase1_file(
    path_str: str,
    source: str,
    manifest: Optional[MetricManifest],
    select: Optional[Sequence[str]],
) -> tuple[list[Finding], "ModuleSummary"]:
    """Phase 1 for one file: per-file findings plus its module summary.

    Module-level on purpose: ``lint --jobs N`` hands this to a process
    pool, and spawn workers can only pickle module-level callables
    (rule DS401's own discipline).
    """
    path = Path(path_str)
    rel = _library_rel(path)
    in_library = rel is not None
    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as exc:
        raise ConfigurationError(f"cannot parse {path}: {exc}") from exc
    ctx = FileContext(
        path=path.as_posix(),
        tree=tree,
        source=source,
        in_library=in_library,
        library_rel=rel,
        manifest=manifest,
    )
    findings = _run_rules(ctx, select)
    silenced = _suppressions(source)
    kept = _apply_suppressions(findings, silenced)
    kept.sort(key=lambda f: (f.line, f.col, f.code))
    summary = summarize_source(
        source,
        ctx.path,
        tree,
        library_rel=rel,
        in_library=in_library,
        suppressions=silenced,
    )
    return kept, summary


def _phase1_worker(args: tuple) -> tuple[list[Finding], "ModuleSummary"]:
    """Picklable pool entry point for ``lint --jobs N``."""
    path_str, source, manifest, select = args
    return _phase1_file(path_str, source, manifest, select)


#: Directories containing this marker file are excluded from directory
#: walks — used by the lint fixture corpus (``tests/data/lint``), whose
#: files violate rules on purpose.
IGNORE_MARKER = ".repro-lint-ignore"


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files accepted verbatim).

    Skips ``__pycache__`` and any directory holding an
    :data:`IGNORE_MARKER` file.
    """
    out: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            ignored = {marker.parent for marker in p.rglob(IGNORE_MARKER)}
            out.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts
                and not ignored.intersection(f.parents)
            )
        elif p.suffix == ".py":
            out.append(p)
        else:
            raise ConfigurationError(f"not a python file or directory: {p}")
    return out


#: SARIF 2.1.0 schema URI emitted by :meth:`LintReport.to_sarif`.
SARIF_SCHEMA = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)


@dataclass
class LintReport:
    """The outcome of one :func:`lint_paths` run."""

    findings: list[Finding]
    files: int
    baseline_suppressed: int = 0
    #: Two-phase instrumentation: ``phase1_s``/``phase2_s`` wall clock,
    #: ``cache_hits``/``cache_misses`` when a summary cache was used.
    timings: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict:
        """The ``--format json`` document (schema version 1)."""
        return {
            "version": 1,
            "files": self.files,
            "counts": self.counts(),
            "baseline_suppressed": self.baseline_suppressed,
            "timings": self.timings,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_sarif(self) -> dict:
        """The ``--format sarif`` document (SARIF 2.1.0)."""
        from repro.lint.dataflow import all_program_rules

        rules_meta = [
            {
                "id": cls.code,
                "shortDescription": {"text": cls.summary},
            }
            for cls in (*all_rules(), *all_program_rules())
        ]
        results = [
            {
                "ruleId": f.code,
                "level": "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": max(f.line, 1),
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
            for f in self.findings
        ]
        return {
            "$schema": SARIF_SCHEMA,
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "informationUri": "docs/linting.md",
                            "rules": rules_meta,
                        }
                    },
                    "results": results,
                }
            ],
        }

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        counts = ", ".join(f"{c}: {n}" for c, n in self.counts().items())
        verdict = (
            f"{len(self.findings)} finding(s) ({counts})"
            if self.findings
            else "clean"
        )
        suffix = (
            f", {self.baseline_suppressed} baselined"
            if self.baseline_suppressed
            else ""
        )
        lines.append(f"[lint] {self.files} file(s): {verdict}{suffix}")
        if self.timings:
            bits = [
                f"phase1 {self.timings.get('phase1_s', 0.0):.3f}s",
                f"phase2 {self.timings.get('phase2_s', 0.0):.3f}s",
            ]
            if "cache_hits" in self.timings:
                bits.append(
                    f"cache {self.timings['cache_hits']} hit(s) / "
                    f"{self.timings['cache_misses']} miss(es)"
                )
            lines.append(f"[lint] {', '.join(bits)}")
        return "\n".join(lines)


#: Library-file count below which the stale-manifest check (DS302)
#: stays off in auto mode: linting a subset of the tree would make
#: every entry for the *unlinted* part look stale.
STALE_CHECK_MIN_LIBRARY_FILES = 50


def lint_paths(
    paths: Sequence[str | Path],
    *,
    manifest: Optional[MetricManifest] = None,
    baseline: Optional["Baseline"] = None,
    select: Optional[Sequence[str]] = None,
    cache_dir: Optional[str | Path] = None,
    jobs: int = 1,
    program: bool = True,
    stale_manifest: Optional[bool] = None,
) -> LintReport:
    """Lint every python file under ``paths`` — the two-phase pass.

    Phase 1 runs the per-file rules and builds module summaries, in
    parallel when ``jobs > 1`` and content-addressed through the
    summary cache when ``cache_dir`` is given (unchanged files are
    served findings + summary without re-parsing).  Phase 2 links the
    summaries into a :class:`~repro.lint.callgraph.Program` and runs
    the interprocedural DS5xx/DS6xx/DS7xx rules plus the DS302
    stale-manifest check (auto-enabled on whole-tree runs with a
    file-loaded manifest; force with ``stale_manifest=True/False``).

    Baseline-ratified findings are dropped (counted in
    :attr:`LintReport.baseline_suppressed`); inline suppressions are
    handled per file in both phases.
    """
    from repro.lint.dataflow import analyze_program

    files = iter_python_files(paths)
    manifest_digest = manifest.digest() if manifest is not None else ""
    cache = None
    if cache_dir is not None and select is None:
        cache = SummaryCache(cache_dir)

    t0 = time.perf_counter()
    findings: list[Finding] = []
    summaries: list[ModuleSummary] = []
    pending: list[tuple[Path, str, Optional[str]]] = []
    for f in files:
        source = f.read_text()
        if cache is not None:
            digest = content_hash(source)
            payload = cache.get(f.as_posix(), digest, manifest_digest)
            if payload is not None:
                findings.extend(
                    Finding(**d) for d in payload["findings"]
                )
                summaries.append(
                    ModuleSummary.from_payload(payload["summary"])
                )
                continue
            pending.append((f, source, digest))
        else:
            pending.append((f, source, None))

    if jobs > 1 and len(pending) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(
                pool.map(
                    _phase1_worker,
                    [
                        (f.as_posix(), source, manifest, select)
                        for f, source, _ in pending
                    ],
                    chunksize=8,
                )
            )
    else:
        results = [
            _phase1_file(f.as_posix(), source, manifest, select)
            for f, source, _ in pending
        ]
    for (f, _, digest), (file_findings, summary) in zip(pending, results):
        findings.extend(file_findings)
        summaries.append(summary)
        if cache is not None and digest is not None:
            cache.put(
                f.as_posix(), digest, manifest_digest, summary, file_findings
            )
    phase1_s = time.perf_counter() - t0

    t1 = time.perf_counter()
    if program:
        library_files = sum(1 for s in summaries if s.in_library)
        if stale_manifest is None:
            check_stale = (
                manifest is not None
                and manifest.path is not None
                and library_files >= STALE_CHECK_MIN_LIBRARY_FILES
            )
        else:
            check_stale = stale_manifest
        findings.extend(
            analyze_program(
                summaries,
                manifest=manifest,
                stale_manifest=check_stale,
                select=select,
            )
        )
    phase2_s = time.perf_counter() - t1

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    suppressed = 0
    if baseline is not None:
        findings, suppressed = baseline.filter(findings)
    timings: dict = {
        "phase1_s": phase1_s,
        "phase2_s": phase2_s,
        "jobs": jobs,
    }
    if cache is not None:
        timings["cache_hits"] = cache.hits
        timings["cache_misses"] = cache.misses

    from repro import obs

    obs.incr("lint.analysis.files", len(files))
    obs.observe("lint.analysis.phase1_s", phase1_s)
    obs.observe("lint.analysis.phase2_s", phase2_s)
    if cache is not None:
        obs.incr("lint.analysis.summary_cache_hits", cache.hits)
        obs.incr("lint.analysis.summary_cache_misses", cache.misses)

    return LintReport(
        findings=findings,
        files=len(files),
        baseline_suppressed=suppressed,
        timings=timings,
    )


def prune_manifest(
    manifest_path: str | Path, stale: Sequence[tuple[str, Optional[int]]]
) -> int:
    """Rewrite the manifest dropping the given stale entries.

    ``stale`` is :meth:`MetricManifest.stale_entries` output; lines are
    removed by line number (entry text double-checked).  Returns the
    number of lines removed — the ``lint --prune-manifest`` fixer.
    """
    path = Path(manifest_path)
    lines = path.read_text().splitlines()
    drop: set[int] = set()
    for entry, lineno in stale:
        if lineno is None or lineno > len(lines):
            continue
        if lines[lineno - 1].partition("#")[0].strip() == entry:
            drop.add(lineno - 1)
    if not drop:
        return 0
    kept = [line for i, line in enumerate(lines) if i not in drop]
    path.write_text("\n".join(kept) + "\n")
    return len(drop)


from repro.lint.baseline import Baseline  # noqa: E402  (cycle-free tail import)
from repro.lint.summaries import (  # noqa: E402  (cycle-free tail import)
    ModuleSummary,
    SummaryCache,
    content_hash,
    summarize_source,
)
