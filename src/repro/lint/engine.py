"""The rule engine: one AST pass per file, rules as plugins.

A :class:`Rule` subclass declares the node types it wants
(:attr:`Rule.visits`); :func:`lint_source` parses the file once, walks
the tree once, and dispatches each node to every subscribed rule.  Rules
yield :class:`Finding` objects; the engine then drops findings silenced
by an inline ``# repro-lint: disable=DSxxx`` comment on the same line,
and — at the :func:`lint_paths` level — findings ratified in the
baseline file (see :mod:`repro.lint.baseline`).

Scoping: conventions like "no magic unit literals" only bind *library*
code, not tests or fixtures, so every rule sees a :class:`FileContext`
that knows whether the file lives under ``src/repro`` and its path
relative to the package root (``ctx.library_rel``), letting rules skip
``units.py`` (the one place unit literals are defined) or the
:mod:`repro.obs` implementation (the one place metric names are plumbed
rather than emitted).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import ConfigurationError

#: Inline suppression comment grammar.  ``disable`` with no codes
#: silences every rule on the line; a comma-separated code list
#: silences only those.  Anything after the codes (``- reason``) is the
#: site's documentation of intent.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+?))?(?:\s+-.*)?$"
)

#: Marker meaning "every code" in a suppression set.
SUPPRESS_ALL = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching.

        Line numbers drift with every unrelated edit, so the baseline
        matches on path + code + message instead.
        """
        return f"{self.path}:{self.code}:{self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class MetricManifest:
    """The checked-in metric-name registry (``docs/metrics.txt``).

    One name per line; ``#`` starts a comment; a trailing ``*`` makes
    the entry a prefix wildcard (``experiment.*`` covers every
    hierarchical span path rooted at ``experiment.``).
    """

    def __init__(self, names: Iterable[str]) -> None:
        self.names: set[str] = set()
        self.prefixes: list[str] = []
        for entry in names:
            if entry.endswith("*"):
                self.prefixes.append(entry[:-1])
            else:
                self.names.add(entry)

    @classmethod
    def load(cls, path: str | Path) -> "MetricManifest":
        entries = []
        for raw in Path(path).read_text().splitlines():
            line = raw.split("#", 1)[0].strip()
            if line:
                entries.append(line)
        return cls(entries)

    def covers(self, name: str) -> bool:
        """Whether a concrete metric name is registered."""
        if name in self.names:
            return True
        return any(name.startswith(p) for p in self.prefixes)

    def covers_prefix(self, prefix: str) -> bool:
        """Whether any registered name could start with ``prefix``.

        The static check for f-string names (``f"store.{name}"``): true
        when a concrete entry starts with the prefix, or a wildcard
        overlaps it in either direction.
        """
        if any(name.startswith(prefix) for name in self.names):
            return True
        return any(
            p.startswith(prefix) or prefix.startswith(p) for p in self.prefixes
        )


@dataclass
class FileContext:
    """Everything a rule may need about the file being linted."""

    path: str
    tree: ast.AST
    source: str
    in_library: bool
    #: Path relative to the ``repro`` package root when ``in_library``
    #: (``"power/model.py"``), else ``None``.
    library_rel: Optional[str]
    manifest: Optional[MetricManifest] = None
    #: Scratch space for per-file rule state (keyed by rule code).
    state: dict = field(default_factory=dict)


class Rule:
    """Base class for one DS rule.

    Subclasses set :attr:`code`, :attr:`summary` and :attr:`visits`, and
    implement :meth:`visit`.  One instance is created per file, so
    per-file state can live on ``self``.
    """

    code: str = ""
    summary: str = ""
    #: AST node classes this rule wants dispatched to :meth:`visit`.
    visits: tuple = ()

    def applies(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (default: library)."""
        return ctx.in_library

    def begin_file(self, ctx: FileContext) -> None:
        """Per-file setup (e.g. a name-collection prepass)."""

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one dispatched node."""
        return iter(())


#: The plugin registry, in registration order.
_RULES: list[type[Rule]] = []


def rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a rule plugin."""
    if not cls.code:
        raise ConfigurationError(f"rule {cls.__name__} has no code")
    if any(existing.code == cls.code for existing in _RULES):
        raise ConfigurationError(f"duplicate rule code {cls.code}")
    _RULES.append(cls)
    return cls


def all_rules() -> list[type[Rule]]:
    """Every registered rule class, in registration order."""
    return list(_RULES)


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> codes silenced by an inline comment there."""
    silenced: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            codes = match.group("codes")
            if codes is None:
                silenced.setdefault(tok.start[0], set()).add(SUPPRESS_ALL)
            else:
                silenced.setdefault(tok.start[0], set()).update(
                    c.strip() for c in codes.split(",") if c.strip()
                )
    except tokenize.TokenError:  # pragma: no cover - truncated source
        pass
    return silenced


def _library_rel(path: Path) -> Optional[str]:
    """Path relative to the ``repro`` package when under ``src/repro``."""
    parts = path.parts
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            return "/".join(parts[i + 2 :])
    return None


def lint_source(
    source: str,
    path: str | Path,
    *,
    manifest: Optional[MetricManifest] = None,
    library: Optional[bool] = None,
    select: Optional[Sequence[str]] = None,
) -> list[Finding]:
    """Lint one file's text through every registered rule.

    Args:
        source: the file's contents.
        path: its (reported) path; also drives library scoping.
        manifest: the metric manifest for DS301 (``None``: DS301 checks
            grammar only).
        library: force library scoping on/off (``None``: infer from the
            path containing ``src/repro``).
        select: restrict to these rule codes (``None``: all).

    Returns:
        Findings not silenced by inline suppressions, in source order.
    """
    path = Path(path)
    rel = _library_rel(path)
    in_library = rel is not None if library is None else library
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise ConfigurationError(f"cannot parse {path}: {exc}") from exc
    ctx = FileContext(
        path=path.as_posix(),
        tree=tree,
        source=source,
        in_library=in_library,
        library_rel=rel if rel is not None else (path.name if in_library else None),
        manifest=manifest,
    )
    active: list[Rule] = []
    dispatch: dict[type, list[Rule]] = {}
    for cls in _RULES:
        if select is not None and cls.code not in select:
            continue
        instance = cls()
        if not instance.applies(ctx):
            continue
        instance.begin_file(ctx)
        active.append(instance)
        for node_type in instance.visits:
            dispatch.setdefault(node_type, []).append(instance)
    findings: list[Finding] = []
    if dispatch:
        for node in ast.walk(tree):
            for instance in dispatch.get(type(node), ()):
                findings.extend(instance.visit(node, ctx))
    silenced = _suppressions(source)
    kept = [
        f
        for f in findings
        if not (
            f.line in silenced
            and (SUPPRESS_ALL in silenced[f.line] or f.code in silenced[f.line])
        )
    ]
    kept.sort(key=lambda f: (f.line, f.col, f.code))
    return kept


#: Directories containing this marker file are excluded from directory
#: walks — used by the lint fixture corpus (``tests/data/lint``), whose
#: files violate rules on purpose.
IGNORE_MARKER = ".repro-lint-ignore"


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files accepted verbatim).

    Skips ``__pycache__`` and any directory holding an
    :data:`IGNORE_MARKER` file.
    """
    out: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            ignored = {marker.parent for marker in p.rglob(IGNORE_MARKER)}
            out.extend(
                f
                for f in sorted(p.rglob("*.py"))
                if "__pycache__" not in f.parts
                and not ignored.intersection(f.parents)
            )
        elif p.suffix == ".py":
            out.append(p)
        else:
            raise ConfigurationError(f"not a python file or directory: {p}")
    return out


@dataclass
class LintReport:
    """The outcome of one :func:`lint_paths` run."""

    findings: list[Finding]
    files: int
    baseline_suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict:
        """The ``--format json`` document (schema version 1)."""
        return {
            "version": 1,
            "files": self.files,
            "counts": self.counts(),
            "baseline_suppressed": self.baseline_suppressed,
            "findings": [f.to_dict() for f in self.findings],
        }

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        counts = ", ".join(f"{c}: {n}" for c, n in self.counts().items())
        verdict = (
            f"{len(self.findings)} finding(s) ({counts})"
            if self.findings
            else "clean"
        )
        suffix = (
            f", {self.baseline_suppressed} baselined"
            if self.baseline_suppressed
            else ""
        )
        lines.append(f"[lint] {self.files} file(s): {verdict}{suffix}")
        return "\n".join(lines)


def lint_paths(
    paths: Sequence[str | Path],
    *,
    manifest: Optional[MetricManifest] = None,
    baseline: Optional["Baseline"] = None,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint every python file under ``paths``.

    Baseline-ratified findings are dropped (counted in
    :attr:`LintReport.baseline_suppressed`); inline suppressions are
    handled per file by :func:`lint_source`.
    """
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for f in files:
        findings.extend(
            lint_source(
                f.read_text(), f, manifest=manifest, select=select
            )
        )
    suppressed = 0
    if baseline is not None:
        findings, suppressed = baseline.filter(findings)
    return LintReport(
        findings=findings, files=len(files), baseline_suppressed=suppressed
    )


from repro.lint.baseline import Baseline  # noqa: E402  (cycle-free tail import)
