"""repro.lint — project-specific static analysis for the reproduction.

Generic linters cannot check the conventions this library's correctness
rests on: SI units internally with named multipliers (:mod:`repro.units`),
the :class:`repro.errors.ReproError` hierarchy, dotted observability
metric namespaces registered in ``docs/metrics.txt``, and spawn-safe
sweep workers.  This package is an AST-visitor rule engine (one pass per
file, rules as plugins with ``DSxxx`` codes) enforcing exactly those
invariants:

=======  ==========================================================
code     invariant
=======  ==========================================================
DS101    no raw magic-unit multipliers (``1e-3``, ``1e9``, ...) in
         library code — use ``units.MILLI`` / ``units.GIGA`` / ...
DS102    no ``==`` / ``!=`` against float literals on physical
         quantities without a named sentinel (:func:`repro.units.is_gated`)
         or an annotated suppression
DS201    no bare ``ValueError`` / ``RuntimeError`` / ``KeyError`` raises
         in library code — raise a :class:`repro.errors.ReproError`
         subclass
DS301    obs metric names must be dotted-lowercase literals (or
         f-strings with a literal dotted prefix) registered in the
         checked-in metric manifest ``docs/metrics.txt``
DS401    no lambdas / closures / global-mutating workers handed to
         process pools (``SweepRunner.map``, ``ProcessPoolExecutor``)
DS402    no wall-clock / unseeded randomness (``time.time()``,
         ``random.*``) in model or experiment code outside
         :mod:`repro.obs` — it breaks manifest fingerprint
         reproducibility
=======  ==========================================================

Findings can be silenced two ways: an inline comment on the offending
line (``# repro-lint: disable=DS102 - exact sentinel``) documents intent
at the site, and a ratified baseline file (``lint_baseline.json``)
grandfathers pre-existing findings so the gate only fires on *new*
violations.  The engine is exposed as ``darksilicon lint`` (see
``docs/linting.md``) and wired into ``make lint`` / ``make test``.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, write_baseline
from repro.lint.engine import (
    Finding,
    LintReport,
    MetricManifest,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    rule,
)

# Importing the rule module registers the built-in DS rules.
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "MetricManifest",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "rule",
    "write_baseline",
]
