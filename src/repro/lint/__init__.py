"""repro.lint — project-specific static analysis for the reproduction.

Generic linters cannot check the conventions this library's correctness
rests on: SI units internally with named multipliers (:mod:`repro.units`),
the :class:`repro.errors.ReproError` hierarchy, dotted observability
metric namespaces registered in ``docs/metrics.txt``, and spawn-safe
sweep workers.  The engine runs in two phases: phase 1 is a per-file
AST pass (rules as plugins with ``DSxxx`` codes) that also distils each
module into a content-addressed summary (:mod:`repro.lint.summaries`,
cached via :mod:`repro.store` for warm runs); phase 2 links the
summaries into a project call graph (:mod:`repro.lint.callgraph`) and
runs interprocedural rule families (:mod:`repro.lint.dataflow`):

=======  ==========================================================
code     invariant
=======  ==========================================================
DS101    no raw magic-unit multipliers (``1e-3``, ``1e9``, ...) in
         library code — use ``units.MILLI`` / ``units.GIGA`` / ...
DS102    no ``==`` / ``!=`` against float literals on physical
         quantities without a named sentinel (:func:`repro.units.is_gated`)
         or an annotated suppression
DS201    no bare ``ValueError`` / ``RuntimeError`` / ``KeyError`` raises
         in library code — raise a :class:`repro.errors.ReproError`
         subclass
DS301    obs metric names must be dotted-lowercase literals (or
         f-strings with a literal dotted prefix) registered in the
         checked-in metric manifest ``docs/metrics.txt``
DS302    the converse: no stale manifest entries — every name or
         wildcard in ``docs/metrics.txt`` must still match an emitted
         metric (or carry a ``# keep`` ratification)
DS401    no lambdas / closures / global-mutating workers handed to
         process pools (``SweepRunner.map``, ``ProcessPoolExecutor``)
DS402    no wall-clock / unseeded randomness (``time.time()``,
         ``random.*``) in model or experiment code outside
         :mod:`repro.obs` — it breaks manifest fingerprint
         reproducibility
DS501    no arithmetic or comparison mixing physical dimensions
         (watts plus kelvin), inferred from :mod:`repro.units` helper
         provenance, ``units.Seconds``-style annotations, and
         ``_hz``/``_w`` name suffixes, propagated through the call
         graph
DS502    no argument whose dimension contradicts the callee
         parameter's (seconds passed where hertz is expected)
DS601    no write to a lock-guarded attribute outside its lock —
         DS401's discipline lifted to class call-graph reachability
DS602    no pool-dispatched worker that transitively mutates
         module-level state (lost under the spawn start method)
DS701    every started resource (``tracemalloc``, samplers, metric
         servers) is stopped, handed off, or ``with``-managed
DS702    every opened sink/file is closed, handed off, or
         ``with``-managed
=======  ==========================================================

Findings can be silenced two ways: an inline comment on the offending
line (``# repro-lint: disable=DS102 - exact sentinel``) documents intent
at the site, and a ratified baseline file (``lint_baseline.json``)
grandfathers pre-existing findings so the gate only fires on *new*
violations.  The engine is exposed as ``darksilicon lint`` (see
``docs/linting.md``) and wired into ``make lint`` / ``make test``.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, write_baseline
from repro.lint.engine import (
    Finding,
    LintReport,
    MetricManifest,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    prune_manifest,
    rule,
)
from repro.lint.callgraph import Program
from repro.lint.dataflow import (
    ProgramRule,
    all_program_rules,
    analyze_program,
    analyze_source,
    program_rule,
)
from repro.lint.summaries import ModuleSummary, SummaryCache, summarize_source

# Importing the rule module registers the built-in per-file DS rules
# (the program rules register when repro.lint.dataflow imports above).
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "MetricManifest",
    "ModuleSummary",
    "Program",
    "ProgramRule",
    "Rule",
    "SummaryCache",
    "all_program_rules",
    "all_rules",
    "analyze_program",
    "analyze_source",
    "lint_paths",
    "lint_source",
    "program_rule",
    "prune_manifest",
    "rule",
    "summarize_source",
    "write_baseline",
]
