"""Ratified-baseline support: gate only *new* violations.

A baseline file (``lint_baseline.json`` at the repo root) records the
fingerprints of findings the project has explicitly accepted, so the
lint gate stays green on legacy debt while failing on anything new.
Fingerprints are line-independent (path + code + message — see
:meth:`repro.lint.engine.Finding.fingerprint`) and matched *with
multiplicity*: a baseline entry absorbs exactly one matching finding,
so duplicating a ratified violation still fails the gate.

``darksilicon lint --write-baseline`` ratifies the current findings;
this repository's checked-in baseline is empty — every pre-existing
finding was fixed or inline-suppressed instead.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import ConfigurationError

#: Baseline file schema version.
BASELINE_VERSION = 1


class Baseline:
    """A multiset of ratified finding fingerprints."""

    def __init__(self, fingerprints: Sequence[str] = ()) -> None:
        self.fingerprints = Counter(fingerprints)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read baseline {path}: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
            raise ConfigurationError(
                f"baseline {path} has unsupported schema "
                f"{doc.get('version') if isinstance(doc, dict) else doc!r}"
            )
        return cls(doc.get("findings", []))

    @classmethod
    def load_if_exists(cls, path: str | Path) -> Optional["Baseline"]:
        return cls.load(path) if Path(path).exists() else None

    def filter(self, findings: Sequence) -> tuple[list, int]:
        """Drop baselined findings; return (kept, suppressed_count).

        Each ratified fingerprint absorbs at most its recorded
        multiplicity, in source order.
        """
        budget = Counter(self.fingerprints)
        kept = []
        suppressed = 0
        for finding in findings:
            fp = finding.fingerprint()
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                suppressed += 1
            else:
                kept.append(finding)
        return kept, suppressed


def write_baseline(path: str | Path, findings: Sequence) -> int:
    """Ratify ``findings`` into the baseline file at ``path``.

    Returns the number of fingerprints written.  Writing an empty
    baseline is meaningful: it asserts the repository lints clean.
    """
    fingerprints = sorted(f.fingerprint() for f in findings)
    doc = {"version": BASELINE_VERSION, "findings": fingerprints}
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return len(fingerprints)
