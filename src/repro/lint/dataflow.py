"""Phase 2b of the whole-program lint: interprocedural rule families.

Three families run over the linked :class:`~repro.lint.callgraph.Program`
rather than over one file's AST:

* **DS5xx dimensional analysis** — DS501 flags add/sub/compare whose
  operands carry different dimension labels (watts plus kelvin); DS502
  flags call sites passing a value of one dimension where the callee's
  parameter claims another (seconds where hertz is expected).  Labels
  come from :mod:`repro.units` helper provenance, annotation aliases,
  and name-suffix conventions, propagated through assignments and call
  returns by the call-graph fixpoint.
* **DS6xx lock/spawn discipline** — DS601 generalizes DS401 from
  syntax to the class call graph: an attribute written under its class
  lock *somewhere* is "guarded", and any other write outside the lock
  (and outside ``__init__``, and not in a private method whose call
  sites all hold the lock) is flagged.  DS602 walks the call graph from
  every pool-dispatched worker and flags workers that transitively
  mutate module-level state — mutations that silently vanish under the
  spawn start method.
* **DS7xx resource lifecycle** — DS701 (must-stop) and DS702
  (must-close) do a per-function escape analysis: a started sampler /
  metric server / tracemalloc session, or an opened sink/file, must be
  stopped/closed in the same function, handed off (returned, stored,
  passed on), or managed by ``with`` — unless the function *is* the
  lifecycle API (``start*``/``enable*``/``open*``/``acquire*``/
  ``serve*``).

Program rules subclass :class:`ProgramRule` and register with
:func:`program_rule`; :func:`analyze_program` runs them and applies the
per-file inline suppressions recorded in the summaries, so
``# repro-lint: disable=DS601 - reason`` works identically to phase 1.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import ConfigurationError
from repro.lint.callgraph import Program
from repro.lint.engine import Finding, SUPPRESS_ALL
from repro.lint.summaries import MUTATORS, ModuleSummary

#: Function-name prefixes exempt from DS701/DS702: these *are* the
#: lifecycle API, and handing back a running resource is their job.
LIFECYCLE_PREFIXES = ("start", "enable", "open", "acquire", "serve")


class ProgramRule:
    """Base class for one whole-program DS rule."""

    code: str = ""
    summary: str = ""

    def check(self, program: Program) -> Iterator[Finding]:
        """Yield findings over the linked program."""
        return iter(())


_PROGRAM_RULES: list[type[ProgramRule]] = []


def program_rule(cls: type[ProgramRule]) -> type[ProgramRule]:
    """Class decorator registering a program rule."""
    if not cls.code:
        raise ConfigurationError(f"program rule {cls.__name__} has no code")
    if any(existing.code == cls.code for existing in _PROGRAM_RULES):
        raise ConfigurationError(f"duplicate program rule code {cls.code}")
    _PROGRAM_RULES.append(cls)
    return cls


def all_program_rules() -> list[type[ProgramRule]]:
    """Every registered program rule class, in registration order."""
    return list(_PROGRAM_RULES)


def _local_name(program: Program, qual: str) -> str:
    summary = program.owner[qual]
    return qual[len(summary.module) + 1 :]


def _iter_functions(program: Program, *, library_only: bool):
    for qual, facts in program.functions.items():
        summary = program.owner[qual]
        if library_only and not summary.in_library:
            continue
        yield qual, facts, summary


@program_rule
class DimensionMixing(ProgramRule):
    """DS501: arithmetic/comparison across different dimension labels."""

    code = "DS501"
    summary = "arithmetic or comparison mixes physical dimensions"

    def check(self, program: Program) -> Iterator[Finding]:
        for qual, facts, summary in _iter_functions(
            program, library_only=True
        ):
            env = program.build_env(qual)
            caller_class = program._caller_class(qual)

            def dim(term):
                return program.resolve_dterm(
                    term, summary, env, caller_class=caller_class
                )

            for record in (*facts["binops"], *facts["compares"]):
                left = dim(record["l"])
                right = dim(record["r"])
                if left is None or right is None or left == right:
                    continue
                verb = (
                    "arithmetic"
                    if record["op"] in ("+", "-")
                    else "comparison"
                )
                yield Finding(
                    code=self.code,
                    path=summary.path,
                    line=record["ln"],
                    col=record["col"],
                    message=(
                        f"{verb} mixes dimensions '{left}' and '{right}' "
                        f"in {_local_name(program, qual)}()"
                    ),
                )


@program_rule
class DimensionArgument(ProgramRule):
    """DS502: argument dimension contradicts the callee's parameter."""

    code = "DS502"
    summary = "argument dimension contradicts the callee parameter"

    def check(self, program: Program) -> Iterator[Finding]:
        from repro import units

        for qual, facts, summary in _iter_functions(
            program, library_only=True
        ):
            env = program.build_env(qual)
            caller_class = program._caller_class(qual)

            def dim(term):
                return program.resolve_dterm(
                    term, summary, env, caller_class=caller_class
                )

            for call in facts["calls"]:
                if call.get("star"):
                    continue
                callee = call["callee"]
                qualified = (
                    None
                    if callee.startswith("self.")
                    else program.resolve_name(summary, callee)
                )
                expected: dict[object, tuple[str, str]] = {}
                callee_label = callee
                if qualified is not None and qualified.startswith(
                    "repro.units."
                ):
                    helper = units.HELPER_DIMENSIONS.get(
                        qualified.rsplit(".", 1)[-1]
                    )
                    if helper is not None and helper[0] is not None:
                        expected[0] = ("value", helper[0])
                        callee_label = qualified.rsplit(".", 1)[-1]
                if not expected:
                    target = program.resolve_function(
                        summary, callee, caller_class=caller_class
                    )
                    if target is None:
                        continue
                    callee_facts = program.functions[target]
                    if callee_facts["flexible"]:
                        continue
                    params = callee_facts["params"]
                    if len(call["args"]) > len(params):
                        continue
                    for index, param in enumerate(params):
                        pdim = callee_facts["param_dims"].get(param)
                        if pdim is not None:
                            expected[index] = (param, pdim)
                            expected[param] = (param, pdim)
                    callee_label = _local_name(program, target)
                for index, term in enumerate(call["args"]):
                    if index not in expected:
                        continue
                    param, pdim = expected[index]
                    actual = dim(term)
                    if actual is not None and actual != pdim:
                        yield Finding(
                            code=self.code,
                            path=summary.path,
                            line=call["ln"],
                            col=call["col"],
                            message=(
                                f"argument '{param}' of {callee_label}() "
                                f"expects '{pdim}' but receives '{actual}'"
                            ),
                        )
                for name, term in call["kw"].items():
                    if name not in expected:
                        continue
                    param, pdim = expected[name]
                    actual = dim(term)
                    if actual is not None and actual != pdim:
                        yield Finding(
                            code=self.code,
                            path=summary.path,
                            line=call["ln"],
                            col=call["col"],
                            message=(
                                f"argument '{param}' of {callee_label}() "
                                f"expects '{pdim}' but receives '{actual}'"
                            ),
                        )


def _lock_held_methods(facts: dict) -> set[str]:
    """Private methods whose in-class call sites all hold the lock."""
    sites: dict[str, list[dict]] = {}
    for call in facts["self_calls"]:
        sites.setdefault(call["method"], []).append(call)
    held: set[str] = set()
    changed = True
    while changed:
        changed = False
        for method in facts["methods"]:
            if method in held or not method.startswith("_"):
                continue
            if method.startswith("__") and method.endswith("__"):
                continue
            calls = sites.get(method)
            if not calls:
                continue
            if all(c["locked"] or c["caller"] in held for c in calls):
                held.add(method)
                changed = True
    return held


@program_rule
class UnlockedGuardedWrite(ProgramRule):
    """DS601: write to a lock-guarded attribute outside the lock."""

    code = "DS601"
    summary = "write to a lock-guarded attribute outside the lock"

    def check(self, program: Program) -> Iterator[Finding]:
        for class_qual, facts in program.classes.items():
            if not facts["lock_attrs"]:
                continue
            module = class_qual.rsplit(".", 1)[0]
            summary = program.modules.get(module)
            if summary is None:
                continue
            held = _lock_held_methods(facts)

            def effective_locked(write: dict) -> bool:
                return write["locked"] or write["method"] in held

            guarded: set[str] = {
                write["attr"]
                for write in facts["attr_writes"]
                if write["method"] != "__init__" and effective_locked(write)
            }
            lock_label = "/".join(facts["lock_attrs"])
            class_name = class_qual.rsplit(".", 1)[-1]
            for write in facts["attr_writes"]:
                if (
                    write["attr"] not in guarded
                    or write["method"] == "__init__"
                    or effective_locked(write)
                ):
                    continue
                yield Finding(
                    code=self.code,
                    path=summary.path,
                    line=write["ln"],
                    col=write["col"],
                    message=(
                        f"self.{write['attr']} is guarded by "
                        f"self.{lock_label} elsewhere but written without "
                        f"it in {class_name}.{write['method']}()"
                    ),
                )


def _module_mutations(
    program: Program, qual: str
) -> list[str]:
    """Module-state mutations performed directly by one function."""
    facts = program.functions[qual]
    summary = program.owner[qual]
    out = [f"global {name}" for name in facts["global_writes"]]
    for call in facts["calls"]:
        callee = call["callee"]
        if "." not in callee:
            continue
        head, _, _ = callee.partition(".")
        terminal = callee.rsplit(".", 1)[-1]
        if head in summary.module_globals and terminal in MUTATORS:
            out.append(callee)
    return out


@program_rule
class SpawnWorkerMutation(ProgramRule):
    """DS602: pool worker transitively mutates module-level state."""

    code = "DS602"
    summary = "spawn worker reaches a module-state mutation"

    def check(self, program: Program) -> Iterator[Finding]:
        for summary in program.summaries:
            for dispatch in summary.spawn_dispatches:
                worker = program.resolve_function(summary, dispatch["worker"])
                if worker is None:
                    continue
                mutations: list[str] = []
                for reached in sorted(program.reachable([worker])):
                    for what in _module_mutations(program, reached):
                        mutations.append(
                            f"{what} in {_local_name(program, reached)}()"
                        )
                if not mutations:
                    continue
                shown = "; ".join(sorted(set(mutations))[:3])
                yield Finding(
                    code=self.code,
                    path=summary.path,
                    line=dispatch["ln"],
                    col=dispatch["col"],
                    message=(
                        f"spawn worker '{dispatch['worker']}' mutates "
                        f"module state invisible to the parent process: "
                        f"{shown}"
                    ),
                )


@program_rule
class StaleManifestEntry(ProgramRule):
    """DS302: manifest entry matches no emitted metric.

    The converse of DS301: every name/wildcard in ``docs/metrics.txt``
    must still be reachable from some statically harvested obs call
    site, or be ratified with a ``# keep`` comment.  Only runs on
    whole-tree walks (see ``stale_manifest`` in
    :func:`repro.lint.engine.lint_paths`); ``lint --prune-manifest``
    rewrites the file dropping the flagged lines.
    """

    code = "DS302"
    summary = "stale metric-manifest entry matches no emitted metric"

    def check(self, program: Program) -> Iterator[Finding]:
        manifest = program.manifest
        if manifest is None or not program.stale_manifest:
            return
        names: set[str] = set()
        prefixes: set[str] = set()
        for summary in program.summaries:
            names.update(summary.metric_names)
            prefixes.update(summary.metric_prefixes)
        for entry, lineno in manifest.stale_entries(names, prefixes):
            yield Finding(
                code=self.code,
                path=manifest.path or "<manifest>",
                line=lineno or 0,
                col=0,
                message=(
                    f"manifest entry '{entry}' matches no emitted metric "
                    "name; prune it (lint --prune-manifest) or ratify "
                    "with a '# keep' comment"
                ),
            )


def _lifecycle_exempt(qual_local: str) -> bool:
    terminal = qual_local.rsplit(".", 1)[-1].lstrip("_")
    return terminal.startswith(LIFECYCLE_PREFIXES)


@program_rule
class UnstoppedResource(ProgramRule):
    """DS701: started resource neither stopped nor handed off."""

    code = "DS701"
    summary = "started resource is never stopped and does not escape"

    def check(self, program: Program) -> Iterator[Finding]:
        for qual, facts, summary in _iter_functions(
            program, library_only=False
        ):
            local = _local_name(program, qual)
            if _lifecycle_exempt(local):
                continue
            resources = facts["resources"]
            stops = set(resources["stops"])
            escapes = set(resources["escapes"])
            managed = set(resources["with"])
            for start in resources["starts"]:
                if start["kind"] == "tracemalloc":
                    if "tracemalloc" in stops:
                        continue
                elif start["var"] is not None:
                    var = start["var"]
                    if var in stops or var in escapes or var in managed:
                        continue
                yield Finding(
                    code=self.code,
                    path=summary.path,
                    line=start["ln"],
                    col=start["col"],
                    message=(
                        f"{start['what']} started in {local}() but never "
                        f"stopped, handed off, or managed by 'with'"
                    ),
                )


@program_rule
class UnclosedResource(ProgramRule):
    """DS702: opened sink/file neither closed nor handed off."""

    code = "DS702"
    summary = "opened sink or file is never closed and does not escape"

    def check(self, program: Program) -> Iterator[Finding]:
        for qual, facts, summary in _iter_functions(
            program, library_only=False
        ):
            local = _local_name(program, qual)
            if _lifecycle_exempt(local):
                continue
            resources = facts["resources"]
            stops = set(resources["stops"])
            escapes = set(resources["escapes"])
            managed = set(resources["with"])
            for opened in facts["resources"]["opens"]:
                var = opened["var"]
                if var in stops or var in escapes or var in managed:
                    continue
                yield Finding(
                    code=self.code,
                    path=summary.path,
                    line=opened["ln"],
                    col=opened["col"],
                    message=(
                        f"{opened['what']}(...) opened as '{var}' in "
                        f"{local}() but never closed, handed off, or "
                        f"managed by 'with'"
                    ),
                )


def analyze_program(
    summaries: Iterable[ModuleSummary],
    *,
    manifest=None,
    stale_manifest: bool = False,
    select: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Run every program rule over linked summaries.

    Inline suppressions recorded in the summaries are applied here, so
    cached (warm) summaries silence findings exactly like fresh ones.
    """
    summaries = list(summaries)
    program = Program(
        summaries, manifest=manifest, stale_manifest=stale_manifest
    )
    selected = set(select) if select is not None else None
    findings: list[Finding] = []
    for cls in _PROGRAM_RULES:
        if selected is not None and cls.code not in selected:
            continue
        findings.extend(cls().check(program))
    silenced = {
        s.path: s.suppressions for s in summaries if s.suppressions
    }
    kept = []
    for f in findings:
        codes = silenced.get(f.path, {}).get(f.line)
        if codes and (SUPPRESS_ALL in codes or f.code in codes):
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return kept


def analyze_source(
    source: str,
    path: str,
    *,
    library: bool = True,
    select: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Run the program rules over one file's text (fixture harness).

    Summarizes the source as a standalone one-module program — enough
    for every program rule except DS302, which needs a whole-tree walk.
    """
    import ast

    from pathlib import Path

    from repro.lint.engine import _suppressions
    from repro.lint.summaries import summarize_source

    tree = ast.parse(source, filename=path)
    summary = summarize_source(
        source,
        Path(path).as_posix(),
        tree,
        library_rel=None,
        in_library=library,
        suppressions=_suppressions(source),
    )
    return analyze_program([summary], select=select)
