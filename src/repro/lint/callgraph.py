"""Phase 2a of the whole-program lint: linking summaries into a program.

:class:`Program` joins the per-module summaries produced by
:mod:`repro.lint.summaries` into one namespace:

* a function index keyed by qualified name
  (``repro.core.tsp.ThermalSafePower.worst_case``);
* name resolution from a *reference as written* in one module
  (``units.ghz``, ``Baseline``, ``self._solve``) to that index, via the
  module's import map, with re-export chasing so ``repro.lint.Baseline``
  links to ``repro.lint.baseline.Baseline``;
* call-graph edges and reachability (used by DS602 spawn analysis);
* a return-dimension fixpoint so dimension labels flow through calls
  (``f = units.ghz(f_ghz)`` then ``f + t_degc`` is flagged even though
  the intermediate has no suffix).

Dimension resolution for the dterm IR lives here too, because both the
fixpoint and the :mod:`repro.lint.dataflow` rules need it: a dterm
resolves to a dimension label via, in order, the local environment
(parameters + assignments), :mod:`repro.units` constant provenance, the
units-helper table, callee return dimensions, and name-suffix
conventions as the fallback.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro import units
from repro.lint.summaries import ModuleSummary, suffix_dimension

#: Qualified prefix under which the units helper/constant tables apply.
_UNITS_MODULE = "repro.units"


class Program:
    """The linked whole-program view over a set of module summaries."""

    def __init__(
        self,
        summaries: Iterable[ModuleSummary],
        *,
        manifest=None,
        stale_manifest: bool = False,
    ) -> None:
        self.summaries = list(summaries)
        #: The loaded :class:`repro.lint.engine.MetricManifest` (opaque
        #: here; consumed by the DS302 stale-entry rule).
        self.manifest = manifest
        #: Whether DS302 should run (only sound on whole-tree walks).
        self.stale_manifest = stale_manifest
        self.modules: dict[str, ModuleSummary] = {
            s.module: s for s in self.summaries
        }
        #: "module.qualname" -> function facts.
        self.functions: dict[str, dict] = {}
        #: "module.qualname" -> owning summary (for import resolution).
        self.owner: dict[str, ModuleSummary] = {}
        #: "module.Class" -> class facts.
        self.classes: dict[str, dict] = {}
        for summary in self.summaries:
            for qualname, facts in summary.functions.items():
                key = f"{summary.module}.{qualname}"
                self.functions[key] = facts
                self.owner[key] = summary
            for name, facts in summary.classes.items():
                self.classes[f"{summary.module}.{name}"] = facts
        self._return_dims: Optional[dict[str, Optional[str]]] = None

    # -- name resolution ----------------------------------------------

    def resolve_name(
        self, summary: ModuleSummary, dotted: str
    ) -> Optional[str]:
        """Qualified name for a reference as written in ``summary``."""
        head, _, rest = dotted.partition(".")
        if head == "self":
            return None
        if head in summary.imports:
            base = summary.imports[head]
            qualified = f"{base}.{rest}" if rest else base
        elif dotted in summary.functions or (
            head in summary.classes or head in summary.module_globals
        ):
            qualified = f"{summary.module}.{dotted}"
        else:
            return None
        return self._dealias(qualified)

    def _dealias(self, qualified: str, depth: int = 0) -> str:
        """Chase re-exports: ``repro.lint.Baseline`` -> its home module."""
        if depth > 4:
            return qualified
        # Longest module prefix that we actually summarized.
        parts = qualified.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                owner = self.modules[prefix]
                rest = parts[cut:]
                name = rest[0]
                local = ".".join(rest)
                if local in owner.functions or name in owner.classes:
                    return qualified
                if name in owner.imports:
                    rebased = ".".join([owner.imports[name], *rest[1:]])
                    return self._dealias(rebased, depth + 1)
                return qualified
        return qualified

    def resolve_function(
        self,
        summary: ModuleSummary,
        callee: str,
        *,
        caller_class: Optional[str] = None,
    ) -> Optional[str]:
        """Function-index key for a call reference, or ``None``."""
        if callee.startswith("self."):
            if caller_class is None or callee.count(".") != 1:
                return None
            key = f"{summary.module}.{caller_class}.{callee[5:]}"
            return key if key in self.functions else None
        qualified = self.resolve_name(summary, callee)
        if qualified is None:
            return None
        if qualified in self.functions:
            return qualified
        if qualified in self.classes:
            init = f"{qualified}.__init__"
            return init if init in self.functions else None
        return None

    # -- call graph ----------------------------------------------------

    def _caller_class(self, qual: str) -> Optional[str]:
        summary = self.owner[qual]
        local = qual[len(summary.module) + 1 :]
        if "." in local and local.split(".", 1)[0] in summary.classes:
            return local.split(".", 1)[0]
        return None

    def callees(self, qual: str) -> list[tuple[str, dict]]:
        """Resolved (callee key, call fact) pairs for one function."""
        facts = self.functions.get(qual)
        if facts is None:
            return []
        summary = self.owner[qual]
        caller_class = self._caller_class(qual)
        out: list[tuple[str, dict]] = []
        for call in facts["calls"]:
            target = self.resolve_function(
                summary, call["callee"], caller_class=caller_class
            )
            if target is not None:
                out.append((target, call))
        return out

    def reachable(self, start: Iterable[str]) -> set[str]:
        """Functions transitively reachable from ``start`` keys."""
        seen: set[str] = set()
        frontier = [q for q in start if q in self.functions]
        while frontier:
            qual = frontier.pop()
            if qual in seen:
                continue
            seen.add(qual)
            for target, _ in self.callees(qual):
                if target not in seen:
                    frontier.append(target)
        return seen

    # -- dimension resolution -----------------------------------------

    def _units_helper(self, qualified: Optional[str]) -> Optional[tuple]:
        """(arg label, result label) when ``qualified`` is a units helper."""
        if qualified is None or not qualified.startswith(_UNITS_MODULE + "."):
            return None
        return units.HELPER_DIMENSIONS.get(
            qualified[len(_UNITS_MODULE) + 1 :]
        )

    def _units_constant(self, qualified: Optional[str]) -> Optional[str]:
        if qualified is None or not qualified.startswith(_UNITS_MODULE + "."):
            return None
        return units.CONSTANT_DIMENSIONS.get(
            qualified[len(_UNITS_MODULE) + 1 :]
        )

    def resolve_dterm(
        self,
        term: list,
        summary: ModuleSummary,
        env: dict[str, str],
        *,
        caller_class: Optional[str] = None,
        _return_dims: Optional[dict] = None,
    ) -> Optional[str]:
        """Dimension label of a dterm, or ``None`` when unknown."""
        kind = term[0]
        if kind == "dim":
            return term[1]
        if kind == "var":
            name = term[1]
            if name in env:
                return env[name]
            qualified = self.resolve_name(summary, name)
            constant = self._units_constant(qualified)
            if constant is not None:
                return constant
            return suffix_dimension(name)
        if kind == "call":
            callee = term[1]
            qualified = (
                None
                if callee.startswith("self.")
                else self.resolve_name(summary, callee)
            )
            helper = self._units_helper(qualified)
            if helper is not None:
                return helper[1]
            target = self.resolve_function(
                summary, callee, caller_class=caller_class
            )
            if target is not None:
                dims = (
                    _return_dims
                    if _return_dims is not None
                    else self.return_dims()
                )
                return dims.get(target)
            return None
        if kind == "binop":
            left = self.resolve_dterm(
                term[2],
                summary,
                env,
                caller_class=caller_class,
                _return_dims=_return_dims,
            )
            right = self.resolve_dterm(
                term[3],
                summary,
                env,
                caller_class=caller_class,
                _return_dims=_return_dims,
            )
            if left is not None and left == right:
                return left
            return None
        return None

    def build_env(
        self,
        qual: str,
        *,
        _return_dims: Optional[dict] = None,
    ) -> dict[str, str]:
        """Known dimensions of one function's parameters and locals.

        Only *known* labels are stored; a variable assigned conflicting
        dimensions is dropped so the suffix fallback applies instead.
        """
        facts = self.functions[qual]
        summary = self.owner[qual]
        caller_class = self._caller_class(qual)
        env: dict[str, str] = dict(facts["param_dims"])
        for name, term in facts["assigns"]:
            dim = self.resolve_dterm(
                term,
                summary,
                env,
                caller_class=caller_class,
                _return_dims=_return_dims,
            )
            if dim is None:
                continue
            if name in env and env[name] != dim:
                del env[name]
            else:
                env[name] = dim
        return env

    def return_dims(self) -> dict[str, Optional[str]]:
        """Fixpoint of each function's (unique) return dimension."""
        if self._return_dims is not None:
            return self._return_dims
        dims: dict[str, Optional[str]] = {q: None for q in self.functions}
        for _ in range(5):
            changed = False
            for qual, facts in self.functions.items():
                if not facts["returns"]:
                    continue
                summary = self.owner[qual]
                caller_class = self._caller_class(qual)
                env = self.build_env(qual, _return_dims=dims)
                seen = {
                    self.resolve_dterm(
                        term,
                        summary,
                        env,
                        caller_class=caller_class,
                        _return_dims=dims,
                    )
                    for term in facts["returns"]
                }
                new = seen.pop() if len(seen) == 1 else None
                if new != dims[qual]:
                    dims[qual] = new
                    changed = True
            if not changed:
                break
        self._return_dims = dims
        return dims
