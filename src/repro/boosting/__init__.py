"""Boosting vs constant-frequency execution (paper Section 6).

* :class:`repro.boosting.controller.BoostingController` — the closed-loop
  Turbo-Boost-style controller the paper models after Intel's: every 1 ms
  control period the chip-wide frequency moves one 200 MHz step up or
  down depending on whether the peak temperature is below or above the
  80 degC threshold.
* :mod:`repro.boosting.constant` — the constant-frequency alternative:
  the highest DVFS level whose leakage-consistent steady state stays
  below the threshold.
* :mod:`repro.boosting.simulation` — transient experiments producing the
  Figure 11 traces and the Figure 12/13 sweeps.
"""

from repro.boosting.controller import BoostingController
from repro.boosting.constant import best_constant_frequency
from repro.boosting.simulation import (
    PlacedWorkload,
    place_workload,
    run_boosting,
    run_constant,
    run_per_instance_boosting,
    BoostingRunResult,
    ConstantRunResult,
)

__all__ = [
    "BoostingController",
    "best_constant_frequency",
    "PlacedWorkload",
    "place_workload",
    "run_boosting",
    "run_constant",
    "run_per_instance_boosting",
    "BoostingRunResult",
    "ConstantRunResult",
]
