"""Constant-frequency selection: the thermally-safe alternative to boosting.

The paper's constant-frequency scheme runs all active cores at the highest
*available* DVFS level whose steady state respects the critical
temperature — which is why Figure 11 shows it sitting "a few degrees below
the critical temperature": the next discrete step up would violate it.

The steady state is computed with the temperature-dependent leakage fixed
point, so the safety check accounts for the leakage the chosen operating
temperature itself induces.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.boosting.simulation import ConstantRunResult, PlacedWorkload
from repro.errors import ConvergenceError, InfeasibleError
from repro.units import gips as to_gips


def constant_steady(
    placed: PlacedWorkload, frequency: float
) -> ConstantRunResult:
    """Leakage-consistent steady state at one fixed frequency.

    Raises:
        ConvergenceError: if the operating point is past thermal runaway.
    """
    chip = placed.chip
    base = placed.base_powers(frequency)
    temps, powers = chip.solver.solve_with_leakage(
        base, lambda t: placed.leakage_powers(frequency, t)
    )
    return ConstantRunResult(
        frequency=frequency,
        gips=to_gips(placed.performance(frequency)),
        total_power=float(np.sum(powers)),
        peak_temperature=float(np.max(temps)),
    )


def best_constant_frequency(
    placed: PlacedWorkload,
    frequencies: Optional[Sequence[float]] = None,
    threshold: Optional[float] = None,
) -> ConstantRunResult:
    """Highest DVFS level whose steady state stays below the threshold.

    Args:
        placed: the pinned workload.
        frequencies: candidate ladder; defaults to the node's DVFS ladder.
        threshold: temperature limit, degC; defaults to the chip's T_DTM.

    Returns:
        The :class:`ConstantRunResult` of the chosen level.

    Raises:
        InfeasibleError: if even the lowest level violates the threshold.
    """
    chip = placed.chip
    ladder = sorted(
        frequencies if frequencies is not None else chip.node.frequency_ladder()
    )
    limit = chip.t_dtm if threshold is None else threshold
    for frequency in reversed(ladder):
        try:
            result = constant_steady(placed, frequency)
        except ConvergenceError:
            continue  # thermal runaway at this level; step down
        if result.peak_temperature <= limit + 1e-6:
            return result
    raise InfeasibleError(
        f"no ladder frequency keeps the workload below {limit} degC"
    )
