"""Transient boosting/constant-frequency experiments (Figures 11-13).

A :class:`PlacedWorkload` pins a workload's instances to cores and
pre-extracts per-core power coefficients so the per-millisecond transient
loop is pure vector arithmetic:

* dynamic + independent power from the commanded frequency,
* leakage from the commanded voltage and each core's *current*
  temperature (the full Eq. (1) temperature feedback).

:func:`run_boosting` couples the transient thermal solver with the
closed-loop :class:`repro.boosting.controller.BoostingController`;
:func:`run_constant` runs the same workload at one fixed frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.apps.workload import ApplicationInstance, Workload
from repro.boosting.controller import BoostingController
from repro.chip import Chip
from repro.errors import ConfigurationError, MappingError
from repro.mapping.base import Placer
from repro.mapping.contiguous import ContiguousPlacer
from repro.thermal.transient import TransientSimulator
from repro.units import gips as to_gips, is_gated


class PlacedWorkload:
    """A workload pinned to cores, with vectorised power evaluation.

    Args:
        chip: the chip the instances are placed on.
        placements: ``(instance, core_indices)`` pairs; core sets must be
            disjoint and each match its instance's thread count.
    """

    def __init__(
        self,
        chip: Chip,
        placements: Sequence[tuple[ApplicationInstance, Sequence[int]]],
    ) -> None:
        self.chip = chip
        self.placements = [(inst, tuple(cores)) for inst, cores in placements]
        seen: set[int] = set()
        for inst, cores in self.placements:
            if len(cores) != inst.cores:
                raise ConfigurationError(
                    f"instance of {inst.app.name} needs {inst.cores} cores, "
                    f"got {len(cores)}"
                )
            if seen.intersection(cores):
                raise ConfigurationError("placements overlap")
            seen.update(cores)
        if seen and (min(seen) < 0 or max(seen) >= chip.n_cores):
            raise ConfigurationError("core index out of range")

        n = chip.n_cores
        # Per-core coefficient vectors (zero on dark cores).
        self._dyn_coeff = np.zeros(n)  # alpha * Ceff (dynamic = coeff*V^2*f)
        self._pind = np.zeros(n)
        self._i0 = np.zeros(n)
        self._active = np.zeros(n, dtype=bool)
        # IPS per Hz of chip frequency: sum over instances of S(n)*IPC.
        self._perf_per_hz = 0.0
        leak_shape = None
        for inst, cores in self.placements:
            model = inst.app.power_model(chip.node)
            alpha = inst.utilisation
            for c in cores:
                self._dyn_coeff[c] = alpha * model.ceff
                self._pind[c] = model.pind
                self._i0[c] = model.leakage.i0
                self._active[c] = True
            self._perf_per_hz += inst.app.speedup(inst.threads) * inst.app.ipc
            leak_shape = model.leakage
        self._curve = None
        if self.placements:
            self._curve = self.placements[0][0].app.power_model(chip.node).curve
        self._leak_shape = leak_shape

    @property
    def n_instances(self) -> int:
        """Number of placed instances."""
        return len(self.placements)

    @property
    def active_cores(self) -> int:
        """Number of cores running a thread."""
        return int(self._active.sum())

    @property
    def occupied(self) -> set[int]:
        """Indices of active cores."""
        return {int(i) for i in np.flatnonzero(self._active)}

    def performance(self, frequency: float) -> float:
        """Aggregate throughput (instructions/s) at chip frequency ``frequency``."""
        return self._perf_per_hz * frequency

    def base_powers(self, frequency: float) -> np.ndarray:
        """Per-core dynamic + independent power at ``frequency``, W."""
        if is_gated(frequency) or not self.placements:
            return np.zeros(self.chip.n_cores)
        v = self._curve.voltage(frequency)
        powers = self._dyn_coeff * (v * v * frequency)
        powers[self._active] += self._pind[self._active]
        return powers

    def leakage_powers(
        self, frequency: float, core_temperatures: np.ndarray
    ) -> np.ndarray:
        """Per-core leakage power at ``frequency`` and given temperatures, W."""
        if is_gated(frequency) or not self.placements:
            return np.zeros(self.chip.n_cores)
        shape = self._leak_shape
        v = self._curve.voltage(frequency)
        per_amp = (
            v
            * (v / shape.vref)
            * np.exp(shape.kv * (v - shape.vref))
            * np.exp(shape.kt * (core_temperatures - shape.tref))
        )
        return self._i0 * per_amp

    def total_powers(
        self, frequency: float, core_temperatures: np.ndarray
    ) -> np.ndarray:
        """Full Eq. (1) per-core power vector, W."""
        return self.base_powers(frequency) + self.leakage_powers(
            frequency, core_temperatures
        )

    # -- per-instance frequency evaluation -----------------------------
    #
    # The chip-wide methods above model the paper's boosting setting (one
    # frequency for all active cores).  The methods below generalise to
    # one frequency per instance, which is what DsRem-style mappings and
    # per-instance boosting produce.

    def _check_frequencies(self, frequencies: Sequence[float]) -> list[float]:
        if len(frequencies) != len(self.placements):
            raise ConfigurationError(
                f"expected {len(self.placements)} per-instance frequencies, "
                f"got {len(frequencies)}"
            )
        return list(frequencies)

    def instance_performance(self, frequencies: Sequence[float]) -> float:
        """Aggregate throughput (instructions/s), one frequency per instance."""
        fs = self._check_frequencies(frequencies)
        return sum(
            inst.app.speedup(inst.threads) * inst.app.ipc * f
            for (inst, _), f in zip(self.placements, fs)
        )

    def instance_base_powers(self, frequencies: Sequence[float]) -> np.ndarray:
        """Per-core dynamic + independent power, one frequency per instance."""
        fs = self._check_frequencies(frequencies)
        powers = np.zeros(self.chip.n_cores)
        for (inst, cores), f in zip(self.placements, fs):
            if is_gated(f):
                continue
            v = self._curve.voltage(f)
            for c in cores:
                powers[c] = self._dyn_coeff[c] * v * v * f + self._pind[c]
        return powers

    def instance_leakage_powers(
        self, frequencies: Sequence[float], core_temperatures: np.ndarray
    ) -> np.ndarray:
        """Per-core leakage power, one frequency per instance."""
        fs = self._check_frequencies(frequencies)
        powers = np.zeros(self.chip.n_cores)
        shape = self._leak_shape
        for (inst, cores), f in zip(self.placements, fs):
            if is_gated(f):
                continue
            v = self._curve.voltage(f)
            v_term = (
                v
                * (v / shape.vref)
                * np.exp(shape.kv * (v - shape.vref))
            )
            idx = list(cores)
            powers[idx] = (
                self._i0[idx]
                * v_term
                * np.exp(shape.kt * (core_temperatures[idx] - shape.tref))
            )
        return powers

    def instance_total_powers(
        self, frequencies: Sequence[float], core_temperatures: np.ndarray
    ) -> np.ndarray:
        """Full Eq. (1) per-core powers, one frequency per instance."""
        return self.instance_base_powers(frequencies) + self.instance_leakage_powers(
            frequencies, core_temperatures
        )

    @classmethod
    def from_mapping(cls, result) -> tuple["PlacedWorkload", list[float]]:
        """Adopt a :class:`repro.core.estimator.MappingResult`'s placement.

        Returns:
            The placed workload plus the mapping's per-instance
            frequencies (feed them to the ``instance_*`` methods to
            transiently validate a steady-state mapping, e.g. a DsRem
            result).
        """
        placements = [(p.instance, p.cores) for p in result.placed]
        placed = cls(result.chip, placements)
        return placed, [p.instance.frequency for p in result.placed]


def place_workload(
    chip: Chip, workload: Workload, placer: Optional[Placer] = None
) -> PlacedWorkload:
    """Pin every instance of ``workload`` to cores (capacity-only check).

    Raises:
        MappingError: if the chip lacks capacity for the whole workload.
    """
    placer = placer or ContiguousPlacer()
    occupied: set[int] = set()
    placements: list[tuple[ApplicationInstance, Sequence[int]]] = []
    for instance in workload:
        cores = placer.place(chip, instance.cores, occupied)
        if cores is None:
            raise MappingError(
                f"chip capacity exhausted after {len(placements)} of "
                f"{len(workload)} instances"
            )
        occupied.update(cores)
        placements.append((instance, cores))
    return PlacedWorkload(chip, placements)


@dataclass(frozen=True)
class BoostingRunResult:
    """Trace and aggregates of one transient run.

    Trace arrays are sampled every ``record_interval``; aggregate scalars
    are computed over *every* integration step, so they do not depend on
    the recording rate.
    """

    times: np.ndarray
    frequencies: np.ndarray
    gips: np.ndarray
    peak_temperatures: np.ndarray
    total_powers: np.ndarray
    average_gips: float
    average_power: float
    max_power: float
    max_temperature: float
    energy: float


@dataclass(frozen=True)
class ConstantRunResult:
    """Steady operation at one fixed frequency.

    Attributes:
        frequency: the fixed chip frequency, Hz.
        gips: aggregate throughput, GIPS.
        total_power: leakage-consistent steady-state chip power, W.
        peak_temperature: steady-state hottest core, degC.
    """

    frequency: float
    gips: float
    total_power: float
    peak_temperature: float


def run_boosting(
    placed: PlacedWorkload,
    controller: BoostingController,
    duration: float,
    dt: float = 1e-3,
    record_interval: float = 0.1,
    warm_start_frequency: Optional[float] = None,
    power_cap: Optional[float] = None,
) -> BoostingRunResult:
    """Simulate closed-loop boosting for ``duration`` seconds.

    The controller is consulted every integration step (``dt`` is the
    control period, 1 ms in the paper).

    Args:
        placed: the pinned workload.
        controller: the boosting controller (its current frequency is the
            starting point).
        duration: simulated seconds.
        dt: integration step == control period, s.
        record_interval: trace sampling interval, s.
        warm_start_frequency: if given, the thermal state starts from the
            leakage-free steady state of running at this frequency
            (avoids simulating a long heat-up from ambient).
        power_cap: electrical power constraint, W (the paper's Section 6
            uses 500 W): whenever the commanded frequency would exceed
            it, the frequency is stepped back down before being applied.
    """
    sim = TransientSimulator(placed.chip.thermal, dt=dt)
    if warm_start_frequency is not None:
        temps0 = np.full(placed.chip.n_cores, placed.chip.t_dtm)
        sim.warm_start(placed.total_powers(warm_start_frequency, temps0))

    if power_cap is None:
        policy = controller.update
    else:

        def policy(peak: float) -> float:
            f = controller.update(peak)
            temps = sim.core_temperatures
            while (
                f > controller.f_min
                and placed.total_powers(f, temps).sum() > power_cap
            ):
                f -= controller.step
            f = max(f, controller.f_min)
            controller.reset(f)
            return f

    return _run_transient(
        placed,
        sim,
        duration,
        record_interval,
        frequency_policy=policy,
    )


def run_constant(
    placed: PlacedWorkload,
    frequency: float,
    duration: float,
    dt: float = 1e-3,
    record_interval: float = 0.1,
    warm_start: bool = True,
) -> BoostingRunResult:
    """Simulate constant-frequency operation for ``duration`` seconds."""
    sim = TransientSimulator(placed.chip.thermal, dt=dt)
    if warm_start:
        temps0 = np.full(placed.chip.n_cores, placed.chip.t_dtm)
        sim.warm_start(placed.total_powers(frequency, temps0))
    return _run_transient(
        placed,
        sim,
        duration,
        record_interval,
        frequency_policy=lambda peak: frequency,
    )


def run_per_instance_boosting(
    placed: PlacedWorkload,
    controllers: Sequence[BoostingController],
    duration: float,
    dt: float = 1e-3,
    record_interval: float = 0.1,
    warm_start_frequencies: Optional[Sequence[float]] = None,
    power_cap: Optional[float] = None,
) -> BoostingRunResult:
    """Closed-loop boosting with one controller per instance.

    The paper's controller is chip-wide; per-instance control is the
    natural finer granularity (each instance reacts to *its own* hottest
    core), letting instances placed in cool die regions boost further
    while hot ones back off.  The electrical ``power_cap`` is enforced by
    stepping down the currently fastest instance until the cap holds.

    Args:
        placed: the pinned workload.
        controllers: one controller per instance, in placement order.
        duration: simulated seconds.
        dt: integration step == control period, s.
        record_interval: trace sampling interval, s.
        warm_start_frequencies: start the thermal state from the steady
            state of these per-instance frequencies.
        power_cap: electrical power constraint, W.

    Returns:
        A :class:`BoostingRunResult`; the ``frequencies`` trace records
        the per-step mean of the instance frequencies.
    """
    if len(controllers) != placed.n_instances:
        raise ConfigurationError(
            f"need {placed.n_instances} controllers, got {len(controllers)}"
        )
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    sim = TransientSimulator(placed.chip.thermal, dt=dt)
    if warm_start_frequencies is not None:
        temps0 = np.full(placed.chip.n_cores, placed.chip.t_dtm)
        sim.warm_start(placed.instance_total_powers(warm_start_frequencies, temps0))

    core_lists = [list(cores) for _, cores in placed.placements]
    n_steps = max(1, int(round(duration / dt)))
    every = max(1, int(round(record_interval / dt)))

    times, freqs, gips_trace, peaks, powers = [], [], [], [], []
    perf_sum = power_sum = max_power = 0.0
    max_temp = -np.inf

    for k in range(n_steps):
        temps = sim.core_temperatures
        fs = [
            ctrl.update(float(temps[cores].max()) if cores else 0.0)
            for ctrl, cores in zip(controllers, core_lists)
        ]
        if power_cap is not None:
            p = placed.instance_total_powers(fs, temps)
            while p.sum() > power_cap:
                fastest = max(range(len(fs)), key=lambda i: fs[i])
                ctrl = controllers[fastest]
                if fs[fastest] <= ctrl.f_min:
                    break
                fs[fastest] = max(ctrl.f_min, fs[fastest] - ctrl.step)
                ctrl.reset(fs[fastest])
                p = placed.instance_total_powers(fs, temps)
        p = placed.instance_total_powers(fs, temps)
        total_p = float(p.sum())
        sim.step(p)

        perf = placed.instance_performance(fs)
        perf_sum += perf
        power_sum += total_p
        max_power = max(max_power, total_p)
        max_temp = max(max_temp, sim.peak_temperature)

        if (k + 1) % every == 0 or k == n_steps - 1:
            times.append((k + 1) * dt)
            freqs.append(float(np.mean(fs)) if fs else 0.0)
            gips_trace.append(to_gips(perf))
            peaks.append(sim.peak_temperature)
            powers.append(total_p)

    avg_power = power_sum / n_steps
    return BoostingRunResult(
        times=np.array(times),
        frequencies=np.array(freqs),
        gips=np.array(gips_trace),
        peak_temperatures=np.array(peaks),
        total_powers=np.array(powers),
        average_gips=to_gips(perf_sum / n_steps),
        average_power=avg_power,
        max_power=max_power,
        max_temperature=float(max_temp),
        energy=avg_power * duration,
    )


def _run_transient(
    placed: PlacedWorkload,
    sim: TransientSimulator,
    duration: float,
    record_interval: float,
    frequency_policy,
) -> BoostingRunResult:
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    n_steps = max(1, int(round(duration / sim.dt)))
    every = max(1, int(round(record_interval / sim.dt)))

    times: list[float] = []
    freqs: list[float] = []
    gips_trace: list[float] = []
    peaks: list[float] = []
    powers: list[float] = []

    perf_sum = 0.0
    power_sum = 0.0
    max_power = 0.0
    max_temp = -np.inf

    for k in range(n_steps):
        temps = sim.core_temperatures
        peak = float(np.max(temps))
        f = frequency_policy(peak)
        p = placed.total_powers(f, temps)
        total_p = float(p.sum())
        sim.step(p)

        perf = placed.performance(f)
        perf_sum += perf
        power_sum += total_p
        max_power = max(max_power, total_p)
        max_temp = max(max_temp, sim.peak_temperature)

        if (k + 1) % every == 0 or k == n_steps - 1:
            times.append((k + 1) * sim.dt)
            freqs.append(f)
            gips_trace.append(to_gips(perf))
            peaks.append(sim.peak_temperature)
            powers.append(total_p)

    avg_power = power_sum / n_steps
    return BoostingRunResult(
        times=np.array(times),
        frequencies=np.array(freqs),
        gips=np.array(gips_trace),
        peak_temperatures=np.array(peaks),
        total_powers=np.array(powers),
        average_gips=to_gips(perf_sum / n_steps),
        average_power=avg_power,
        max_power=max_power,
        max_temperature=float(max_temp),
        energy=avg_power * duration,
    )
