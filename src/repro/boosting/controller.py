"""Closed-loop boosting controller (Intel Turbo Boost style).

The paper (Section 6): "we use a closed-loop control as used in Intel's
Turbo Boost, with a control period of 1 ms.  That is, every 1 ms the
system verifies that the temperature on all cores is below or above the
predefined threshold of 80 degC, and the frequency on all cores is
increased or decreased one step (200 MHz) accordingly."

The controller is deliberately chip-wide (one frequency for all active
cores), exactly as described; per-core boosting is out of the paper's
scope.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class BoostingController:
    """Bang-bang frequency controller around a temperature threshold.

    Args:
        f_min: lowest frequency the controller will command, Hz.
        f_max: highest (boost) frequency it may command, Hz — typically
            the Eq. (2) curve's reachable limit, above the nominal level.
        step: frequency step per control period, Hz (200 MHz in the
            paper).
        threshold: temperature threshold, degC (80 in the paper).
        initial_frequency: starting frequency, Hz; defaults to ``f_min``.
    """

    def __init__(
        self,
        f_min: float,
        f_max: float,
        step: float,
        threshold: float,
        initial_frequency: float | None = None,
    ) -> None:
        if not 0 < f_min <= f_max:
            raise ConfigurationError(
                f"need 0 < f_min <= f_max, got {f_min} and {f_max}"
            )
        if step <= 0:
            raise ConfigurationError(f"step must be positive, got {step}")
        self._f_min = f_min
        self._f_max = f_max
        self._step = step
        self._threshold = threshold
        start = f_min if initial_frequency is None else initial_frequency
        if not f_min <= start <= f_max:
            raise ConfigurationError(
                f"initial_frequency {start} outside [{f_min}, {f_max}]"
            )
        self._frequency = start

    @property
    def frequency(self) -> float:
        """Currently commanded chip-wide frequency, Hz."""
        return self._frequency

    @property
    def f_min(self) -> float:
        """Lowest commandable frequency, Hz."""
        return self._f_min

    @property
    def f_max(self) -> float:
        """Highest (boost) commandable frequency, Hz."""
        return self._f_max

    @property
    def step(self) -> float:
        """Frequency step per control period, Hz."""
        return self._step

    @property
    def threshold(self) -> float:
        """The control temperature threshold, degC."""
        return self._threshold

    def update(self, peak_temperature: float) -> float:
        """One control period: step the frequency and return it.

        Below the threshold the frequency rises one step (boosting);
        at or above it, it falls one step (cool-down) — producing the
        oscillation around the threshold visible in Figure 11.
        """
        if peak_temperature < self._threshold:
            self._frequency = min(self._frequency + self._step, self._f_max)
        else:
            self._frequency = max(self._frequency - self._step, self._f_min)
        return self._frequency

    def reset(self, frequency: float | None = None) -> None:
        """Reset the commanded frequency (default: ``f_min``)."""
        target = self._f_min if frequency is None else frequency
        if not self._f_min <= target <= self._f_max:
            raise ConfigurationError(
                f"frequency {target} outside [{self._f_min}, {self._f_max}]"
            )
        self._frequency = target
