"""repro — a reproduction of "New Trends in Dark Silicon" (DAC 2015).

The library rebuilds the paper's full tool flow (Figure 1) in pure
Python: an analytic gem5/McPAT substitute (application + power models), a
HotSpot-equivalent compact thermal RC simulator, ITRS technology scaling,
and on top of them the paper's analyses — dark-silicon estimation under
power-budget vs temperature constraints, DVFS trade-offs, dark-silicon
patterning, DsRem, Thermal Safe Power (TSP), and boosting vs
constant-frequency execution in the STC and NTC regions.

Quick start::

    from repro import Chip, NODE_16NM, PARSEC
    from repro import TemperatureConstraint, estimate_dark_silicon

    chip = Chip.for_node(NODE_16NM)                # 100 cores, 16 nm
    result = estimate_dark_silicon(
        chip, PARSEC["x264"], frequency=3.6e9,
        constraint=TemperatureConstraint(),
    )
    print(f"dark silicon: {result.dark_fraction:.0%}, "
          f"peak {result.peak_temperature:.1f} degC")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.chip import Chip
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    InfeasibleError,
    MappingError,
    ReproError,
)
from repro.tech import (
    ALL_NODES,
    EVALUATED_NODES,
    NODE_8NM,
    NODE_11NM,
    NODE_16NM,
    NODE_22NM,
    TechNode,
    node_by_name,
)
from repro.apps import PARSEC, PARSEC_ORDER, AppProfile, ApplicationInstance, Workload
from repro.power import CorePowerModel, LeakageModel, Region, VFCurve
from repro.thermal import (
    PAPER_THERMAL_CONFIG,
    SteadyStateSolver,
    ThermalConfig,
    ThermalModel,
    TransientSimulator,
    build_thermal_model,
)
from repro.core import (
    CompositeConstraint,
    Constraint,
    MappingResult,
    PowerBudgetConstraint,
    TemperatureConstraint,
    ThermalSafePower,
    best_homogeneous_configuration,
    compare_tdp_vs_temperature,
    estimate_dark_silicon,
    map_workload,
    sweep_frequencies,
)
from repro.mapping import (
    CheckerboardPlacer,
    ContiguousPlacer,
    NeighbourhoodSpreadPlacer,
    ThermalSpreadPlacer,
    ds_rem,
    tdp_map,
)
from repro.boosting import (
    BoostingController,
    best_constant_frequency,
    place_workload,
    run_boosting,
    run_constant,
)
from repro.ntc import iso_performance_comparison
from repro.ntc.energy_sweep import energy_voltage_sweep, minimum_energy_point
from repro.dtm import GateHottest, ThrottleHottest, enforce as enforce_dtm
from repro.mapping.temporal import evaluate_rotation
from repro.io import result_to_csv, result_to_json

__version__ = "1.0.0"

__all__ = [
    "Chip",
    "ReproError",
    "ConfigurationError",
    "ConvergenceError",
    "InfeasibleError",
    "MappingError",
    "TechNode",
    "node_by_name",
    "ALL_NODES",
    "EVALUATED_NODES",
    "NODE_22NM",
    "NODE_16NM",
    "NODE_11NM",
    "NODE_8NM",
    "AppProfile",
    "ApplicationInstance",
    "Workload",
    "PARSEC",
    "PARSEC_ORDER",
    "VFCurve",
    "Region",
    "LeakageModel",
    "CorePowerModel",
    "ThermalConfig",
    "PAPER_THERMAL_CONFIG",
    "ThermalModel",
    "build_thermal_model",
    "SteadyStateSolver",
    "TransientSimulator",
    "Constraint",
    "PowerBudgetConstraint",
    "TemperatureConstraint",
    "CompositeConstraint",
    "MappingResult",
    "map_workload",
    "ThermalSafePower",
    "estimate_dark_silicon",
    "sweep_frequencies",
    "compare_tdp_vs_temperature",
    "best_homogeneous_configuration",
    "ContiguousPlacer",
    "CheckerboardPlacer",
    "NeighbourhoodSpreadPlacer",
    "ThermalSpreadPlacer",
    "tdp_map",
    "ds_rem",
    "BoostingController",
    "best_constant_frequency",
    "place_workload",
    "run_boosting",
    "run_constant",
    "iso_performance_comparison",
    "energy_voltage_sweep",
    "minimum_energy_point",
    "GateHottest",
    "ThrottleHottest",
    "enforce_dtm",
    "evaluate_rotation",
    "result_to_csv",
    "result_to_json",
    "__version__",
]
