"""Unit conventions and conversion helpers.

The library uses SI units internally everywhere:

========================  ==========================
quantity                  unit
========================  ==========================
length / thickness        metre (m)
area                      square metre (m^2)
power                     watt (W)
temperature               degree Celsius (degC) [*]_
thermal resistance        kelvin per watt (K/W)
thermal conductance       watt per kelvin (W/K)
thermal capacitance       joule per kelvin (J/K)
voltage                   volt (V)
frequency                 hertz (Hz)
capacitance               farad (F)
current                   ampere (A)
energy                    joule (J)
time                      second (s)
performance               instructions per second
========================  ==========================

.. [*] Temperature *differences* are expressed in kelvin; absolute
   temperatures in degrees Celsius, matching HotSpot's convention of
   configuring the ambient in Celsius while the RC mathematics only ever
   manipulates differences.

Public constants expose the multipliers used when paper values (mm, GHz,
nF, ...) are written in source code, so the intent stays visible at the
point of use: ``0.15 * MILLI`` reads as "0.15 mm".
"""

from __future__ import annotations

#: Multiplier for milli (1e-3). ``x * MILLI`` converts mm -> m, mW -> W, ...
MILLI = 1e-3

#: Multiplier for micro (1e-6). ``x * MICRO`` converts um -> m.
MICRO = 1e-6

#: Multiplier for nano (1e-9). ``x * NANO`` converts nF -> F, ns -> s.
NANO = 1e-9

#: Multiplier for kilo (1e3).
KILO = 1e3

#: Multiplier for mega (1e6).
MEGA = 1e6

#: Multiplier for giga (1e9). ``f_hz = f_ghz * GIGA``.
GIGA = 1e9


#: Sentinel frequency (Hz) marking a power-gated (dark) core, or "no
#: feasible DVFS level" in ladder searches.  Assign it by name and test
#: it with :func:`is_gated` — never with a bare ``== 0.0``, which reads
#: as an accidental float-equality bug (lint rule DS102).
F_GATED = 0.0


def is_gated(frequency: float) -> bool:
    """True when ``frequency`` is exactly the power-gated sentinel.

    The comparison is exact on purpose: :data:`F_GATED` is only ever
    *assigned*, never computed, so no rounding can occur between the
    assignment and the test.
    """
    return frequency == F_GATED  # repro-lint: disable=DS102 - sentinel definition


def ghz(value: float) -> float:
    """Convert a frequency in gigahertz to hertz."""
    return value * GIGA


def to_ghz(value_hz: float) -> float:
    """Convert a frequency in hertz to gigahertz."""
    return value_hz / GIGA


def mm2(value: float) -> float:
    """Convert an area in square millimetres to square metres."""
    return value * MILLI * MILLI


def to_mm2(value_m2: float) -> float:
    """Convert an area in square metres to square millimetres."""
    return value_m2 / (MILLI * MILLI)


def gips(value_ips: float) -> float:
    """Convert instructions/second to giga-instructions/second (GIPS)."""
    return value_ips / GIGA


# -- machine-readable dimension table ---------------------------------
#
# The whole-program lint pass (repro.lint, rules DS501/DS502) infers a
# *dimension label* for values flowing through the call graph and flags
# arithmetic or argument passing that mixes labels — adding watts to
# kelvin, passing seconds where hertz is expected.  Three inference
# seeds feed it, all defined here so the conventions live next to the
# unit table at the top of this module:
#
# 1. the converter helpers below (``ghz`` consumes "ghz", yields "hz");
# 2. signature annotations using the float aliases (``dt: Seconds``);
# 3. parameter-name suffix conventions (``budget_w`` carries "w").
#
# Temperature is deliberately a single label "temp": the library mixes
# absolute Celsius with kelvin *differences* by design (see the table
# footnote above), and an absolute-plus-delta sum is legitimate.

#: Converter helpers: function name -> (argument label, result label).
#: ``None`` means "no single dimension" (booleans, pure scale factors).
HELPER_DIMENSIONS: dict[str, tuple[str | None, str | None]] = {
    "ghz": ("ghz", "hz"),
    "to_ghz": ("hz", "ghz"),
    "mm2": ("mm2", "m2"),
    "to_mm2": ("m2", "mm2"),
    "gips": ("ips", "gips"),
    "is_gated": ("hz", None),
}

#: Module constants with a physical dimension (the scale multipliers
#: MILLI..GIGA are dimensionless and deliberately absent).
CONSTANT_DIMENSIONS: dict[str, str] = {
    "F_GATED": "hz",
}

#: Parameter/variable name suffixes that imply a dimension.  Matched
#: against the full name, longest suffix first; a name consisting of
#: only the suffix (``s``, ``w``) is *not* matched.
SUFFIX_DIMENSIONS: dict[str, str] = {
    "_hz": "hz",
    "_ghz": "ghz",
    "_s": "s",
    "_w": "w",
    "_m2": "m2",
    "_mm2": "mm2",
    "_j": "j",
    "_v": "v",
    "_ips": "ips",
    "_gips": "gips",
    "_degc": "temp",
    "_k": "temp",
}

# Annotation aliases: plain ``float`` at runtime, a dimension claim to
# the analyzer (and the human reader) in signatures: ``dt: Seconds``.
Hz = float
GHz = float
Seconds = float
Watts = float
Kelvin = float
Celsius = float
SquareMetres = float
SquareMillimetres = float
Joules = float
Volts = float
IPS = float
GIPS = float

#: Annotation alias name -> dimension label.
ANNOTATION_DIMENSIONS: dict[str, str] = {
    "Hz": "hz",
    "GHz": "ghz",
    "Seconds": "s",
    "Watts": "w",
    "Kelvin": "temp",
    "Celsius": "temp",
    "SquareMetres": "m2",
    "SquareMillimetres": "mm2",
    "Joules": "j",
    "Volts": "v",
    "IPS": "ips",
    "GIPS": "gips",
}
