"""Unit conventions and conversion helpers.

The library uses SI units internally everywhere:

========================  ==========================
quantity                  unit
========================  ==========================
length / thickness        metre (m)
area                      square metre (m^2)
power                     watt (W)
temperature               degree Celsius (degC) [*]_
thermal resistance        kelvin per watt (K/W)
thermal conductance       watt per kelvin (W/K)
thermal capacitance       joule per kelvin (J/K)
voltage                   volt (V)
frequency                 hertz (Hz)
capacitance               farad (F)
current                   ampere (A)
energy                    joule (J)
time                      second (s)
performance               instructions per second
========================  ==========================

.. [*] Temperature *differences* are expressed in kelvin; absolute
   temperatures in degrees Celsius, matching HotSpot's convention of
   configuring the ambient in Celsius while the RC mathematics only ever
   manipulates differences.

Public constants expose the multipliers used when paper values (mm, GHz,
nF, ...) are written in source code, so the intent stays visible at the
point of use: ``0.15 * MILLI`` reads as "0.15 mm".
"""

from __future__ import annotations

#: Multiplier for milli (1e-3). ``x * MILLI`` converts mm -> m, mW -> W, ...
MILLI = 1e-3

#: Multiplier for micro (1e-6). ``x * MICRO`` converts um -> m.
MICRO = 1e-6

#: Multiplier for nano (1e-9). ``x * NANO`` converts nF -> F, ns -> s.
NANO = 1e-9

#: Multiplier for kilo (1e3).
KILO = 1e3

#: Multiplier for mega (1e6).
MEGA = 1e6

#: Multiplier for giga (1e9). ``f_hz = f_ghz * GIGA``.
GIGA = 1e9


#: Sentinel frequency (Hz) marking a power-gated (dark) core, or "no
#: feasible DVFS level" in ladder searches.  Assign it by name and test
#: it with :func:`is_gated` — never with a bare ``== 0.0``, which reads
#: as an accidental float-equality bug (lint rule DS102).
F_GATED = 0.0


def is_gated(frequency: float) -> bool:
    """True when ``frequency`` is exactly the power-gated sentinel.

    The comparison is exact on purpose: :data:`F_GATED` is only ever
    *assigned*, never computed, so no rounding can occur between the
    assignment and the test.
    """
    return frequency == F_GATED  # repro-lint: disable=DS102 - sentinel definition


def ghz(value: float) -> float:
    """Convert a frequency in gigahertz to hertz."""
    return value * GIGA


def to_ghz(value_hz: float) -> float:
    """Convert a frequency in hertz to gigahertz."""
    return value_hz / GIGA


def mm2(value: float) -> float:
    """Convert an area in square millimetres to square metres."""
    return value * MILLI * MILLI


def to_mm2(value_m2: float) -> float:
    """Convert an area in square metres to square millimetres."""
    return value_m2 / (MILLI * MILLI)


def gips(value_ips: float) -> float:
    """Convert instructions/second to giga-instructions/second (GIPS)."""
    return value_ips / GIGA
