"""Per-core process-variation maps.

Leakage is the variation-dominated Eq. (1) term (threshold-voltage
spread enters it exponentially), so the map stores a per-core
multiplicative factor on the leakage current.  Maps are generated from
an explicit seed — experiments and tests stay bit-reproducible — as
log-normal fields, optionally smoothed over the core grid to model the
spatial correlation real within-die variation exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chip import Chip
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class VariationMap:
    """Per-core leakage multipliers (mean ~1).

    Attributes:
        leakage_multipliers: array of per-core factors, all positive.
    """

    leakage_multipliers: np.ndarray

    def __post_init__(self) -> None:
        m = np.asarray(self.leakage_multipliers, dtype=float)
        if m.ndim != 1 or m.size == 0:
            raise ConfigurationError(
                "leakage_multipliers must be a non-empty 1-D array"
            )
        if np.any(m <= 0):
            raise ConfigurationError("leakage multipliers must be positive")
        object.__setattr__(self, "leakage_multipliers", m)

    @property
    def n_cores(self) -> int:
        """Number of cores the map covers."""
        return self.leakage_multipliers.size

    @property
    def spread(self) -> float:
        """max/min multiplier ratio — the die's leakage spread."""
        m = self.leakage_multipliers
        return float(m.max() / m.min())

    def multiplier(self, core: int) -> float:
        """The named core's leakage factor."""
        if not 0 <= core < self.n_cores:
            raise ConfigurationError(
                f"core index {core} out of range [0, {self.n_cores})"
            )
        return float(self.leakage_multipliers[core])

    @classmethod
    def generate(
        cls,
        chip: Chip,
        sigma: float = 0.25,
        seed: int = 1,
        correlation_passes: int = 1,
    ) -> "VariationMap":
        """Draw a log-normal variation map for ``chip``.

        Args:
            chip: the chip (provides core count and, for grid chips, the
                layout used by the spatial smoothing).
            sigma: standard deviation of the underlying normal (0.25
                gives roughly a 2.5-3x max/min leakage spread at 100
                cores, the magnitude variability studies report for
                deep-nanometre nodes).
            seed: RNG seed; identical inputs give identical maps.
            correlation_passes: 4-neighbour smoothing passes over the
                grid (0 = spatially white).  Smoothing preserves the
                field's mean.

        Raises:
            ConfigurationError: on a negative sigma, or smoothing
                requested for a chip without a grid layout.
        """
        if sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        if correlation_passes < 0:
            raise ConfigurationError(
                f"correlation_passes must be non-negative, got {correlation_passes}"
            )
        rng = np.random.default_rng(seed)
        field = rng.normal(0.0, sigma, size=chip.n_cores)
        if correlation_passes > 0:
            if chip.grid is None:
                raise ConfigurationError(
                    "spatial correlation needs a grid chip"
                )
            rows, cols = chip.grid
            grid = field.reshape(rows, cols)
            for _ in range(correlation_passes):
                padded = np.pad(grid, 1, mode="edge")
                grid = (
                    padded[1:-1, 1:-1]
                    + padded[:-2, 1:-1]
                    + padded[2:, 1:-1]
                    + padded[1:-1, :-2]
                    + padded[1:-1, 2:]
                ) / 5.0
            field = grid.ravel()
        # Centre the log-field so the *median* multiplier is exactly 1.
        field = field - field.mean()
        return cls(leakage_multipliers=np.exp(field))
