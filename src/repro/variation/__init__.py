"""Process variation: per-core leakage spread and variability-aware mapping.

The paper's dark-silicon-management section builds on DaSim (Shafique et
al., DATE 2015), which is *variability-aware*: at deep-nanometre nodes
cores of one die differ substantially in leakage, so which cores are
left dark should depend on the variation map, not only on geometry.

* :class:`repro.variation.map.VariationMap` — a deterministic per-core
  leakage-multiplier field (log-normal with optional spatial
  correlation);
* :mod:`repro.variation.power` — Eq. (1) evaluation under a variation
  map, pluggable into the estimation engine;
* :class:`repro.variation.placer.VariationAwarePlacer` — DaSim-style
  placement that prefers cool, low-leakage cores.
"""

from repro.variation.map import VariationMap
from repro.variation.power import varied_power_evaluator, mapping_power_with_variation
from repro.variation.placer import VariationAwarePlacer

__all__ = [
    "VariationMap",
    "varied_power_evaluator",
    "mapping_power_with_variation",
    "VariationAwarePlacer",
]
