"""Variability-aware placement (DaSim-style).

A variation-aware runtime has two signals: the thermal influence already
accumulated at a core (spread the heat) and the core's leakage
multiplier (prefer low-leakage silicon; leave the leaky cores dark).
The placer scores a candidate core as

    score(c) = sum_{k in taken} B[c, k] + B[c, c]
               + leakage_weight * mult_c * B[c, c]

— the thermal-spread score of
:class:`repro.mapping.patterns.ThermalSpreadPlacer` plus a term ranking
cores by their leakage factor.

With the calibrated catalogue, leakage is a single-digit share of core
power, so the mechanism's first-order payoff is *power*, not peak
temperature: on a strongly varied die, picking the low-leakage cores
saves watts under a TDP-style budget (occasionally buying an extra
instance), while the thermal term keeps the mapping spread.  Use a
larger ``leakage_weight`` for power-bound scenarios and a smaller one
when the temperature constraint binds.
"""

from __future__ import annotations

from typing import AbstractSet, Optional, Sequence

from repro.chip import Chip
from repro.errors import ConfigurationError
from repro.mapping.base import Placer
from repro.variation.map import VariationMap


class VariationAwarePlacer(Placer):
    """Greedy placer scoring thermal influence plus leakage rank.

    Args:
        variation: the die's variation map.
        leakage_weight: relative weight of the leakage term; 0 recovers
            the pure thermal-spread placer, large values approach a pure
            lowest-leakage-first ordering.
    """

    def __init__(self, variation: VariationMap, leakage_weight: float = 2.0) -> None:
        if leakage_weight < 0:
            raise ConfigurationError(
                f"leakage_weight must be non-negative, got {leakage_weight}"
            )
        self._variation = variation
        self._weight = leakage_weight

    def place(
        self, chip: Chip, n_cores: int, occupied: AbstractSet[int]
    ) -> Optional[Sequence[int]]:
        if self._variation.n_cores != chip.n_cores:
            raise ConfigurationError(
                f"variation map covers {self._variation.n_cores} cores, "
                f"chip has {chip.n_cores}"
            )
        free = self.free_cores(chip, occupied)
        if len(free) < n_cores:
            return None
        influence = chip.thermal.influence_matrix()
        mults = self._variation.leakage_multipliers
        taken = set(occupied)
        chosen: list[int] = []
        candidates = set(free)
        for _ in range(n_cores):
            best = min(
                sorted(candidates),
                key=lambda c: (
                    sum(influence[c, k] for k in taken)
                    + influence[c, c]
                    + self._weight * mults[c] * influence[c, c]
                ),
            )
            chosen.append(best)
            candidates.remove(best)
            taken.add(best)
        return chosen
