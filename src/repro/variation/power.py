"""Eq. (1) evaluation under a process-variation map.

The variation map multiplies the leakage term only; dynamic and
independent power are kept nominal (their variation is second-order
compared to the exponential leakage sensitivity to threshold-voltage
spread).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.apps.workload import ApplicationInstance
from repro.chip import Chip
from repro.core.estimator import MappingResult
from repro.errors import ConfigurationError
from repro.variation.map import VariationMap


def varied_power_evaluator(
    chip: Chip, variation: VariationMap
) -> Callable[[ApplicationInstance, Sequence[int], float], np.ndarray]:
    """Build the ``power_evaluator`` hook for
    :func:`repro.core.estimator.map_workload`.

    The returned callable computes, per core the instance occupies,
    ``dynamic + independent + multiplier * leakage``.
    """
    if variation.n_cores != chip.n_cores:
        raise ConfigurationError(
            f"variation map covers {variation.n_cores} cores, chip has "
            f"{chip.n_cores}"
        )

    def evaluate(
        instance: ApplicationInstance,
        cores: Sequence[int],
        temperature: float,
    ) -> np.ndarray:
        model = instance.app.power_model(chip.node)
        v = model.voltage_for(instance.frequency)
        base = (
            model.dynamic_power(instance.frequency, alpha=instance.utilisation, vdd=v)
            + model.pind
        )
        leak = model.leakage.power(v, temperature)
        mults = variation.leakage_multipliers[np.asarray(cores, dtype=int)]
        return base + mults * leak

    return evaluate


def mapping_power_with_variation(
    result: MappingResult, variation: VariationMap, temperature: float | None = None
) -> np.ndarray:
    """Re-evaluate a nominal mapping's per-core powers under variation.

    Useful to quantify what a variation-oblivious mapping *actually*
    dissipates on a varied die (and whether it still respects T_DTM).

    Args:
        result: a mapping produced without (or with) variation.
        variation: the die's variation map.
        temperature: leakage-evaluation temperature, degC (default:
            the chip's T_DTM).

    Returns:
        The per-core power vector, W.
    """
    chip = result.chip
    if variation.n_cores != chip.n_cores:
        raise ConfigurationError(
            f"variation map covers {variation.n_cores} cores, chip has "
            f"{chip.n_cores}"
        )
    t = chip.t_dtm if temperature is None else temperature
    evaluator = varied_power_evaluator(chip, variation)
    powers = np.zeros(chip.n_cores)
    for placed in result.placed:
        powers[list(placed.cores)] += evaluator(
            placed.instance, placed.cores, t
        )
    return powers
