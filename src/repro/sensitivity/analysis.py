"""Perturb the calibration, re-check the paper's headline shapes.

The shapes evaluated here are deliberately the cheap, central ones —
the Figure 5/6/7/8 claims that drive the paper's Observations 1 and 2 —
so a whole sensitivity sweep stays in benchmark-friendly time.  Each is
a boolean; :func:`sensitivity_sweep` reports which survive each
single-axis perturbation of the dynamic-capacitance, leakage and
independent-power coefficients.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.apps.parsec import PARSEC, PARSEC_ORDER
from repro.apps.profile import AppProfile
from repro.chip import Chip
from repro.core.constraints import PowerBudgetConstraint, TemperatureConstraint
from repro.core.dark_silicon import (
    best_homogeneous_configuration,
    estimate_dark_silicon,
)
from repro.errors import ConfigurationError
from repro.mapping.contiguous import ContiguousPlacer
from repro.mapping.patterns import NeighbourhoodSpreadPlacer
from repro.power.budget import PAPER_TDP_OPTIMISTIC, PAPER_TDP_PESSIMISTIC


def perturbed_app(
    app: AppProfile,
    ceff_scale: float = 1.0,
    pind_scale: float = 1.0,
    i0_scale: float = 1.0,
) -> AppProfile:
    """A copy of ``app`` with scaled 22 nm Eq. (1) coefficients."""
    for name, scale in (
        ("ceff_scale", ceff_scale),
        ("pind_scale", pind_scale),
        ("i0_scale", i0_scale),
    ):
        if scale <= 0:
            raise ConfigurationError(f"{name} must be positive, got {scale}")
    return dataclasses.replace(
        app,
        ceff_22nm=app.ceff_22nm * ceff_scale,
        pind_22nm=app.pind_22nm * pind_scale,
        i0_22nm=app.i0_22nm * i0_scale,
    )


def perturbed_catalogue(
    ceff_scale: float = 1.0,
    pind_scale: float = 1.0,
    i0_scale: float = 1.0,
) -> dict[str, AppProfile]:
    """The whole PARSEC catalogue, uniformly perturbed."""
    return {
        name: perturbed_app(app, ceff_scale, pind_scale, i0_scale)
        for name, app in PARSEC.items()
    }


@dataclass(frozen=True)
class HeadlineShapes:
    """Truth values of the cheap headline claims under one calibration.

    Attributes:
        pessimistic_darker_than_optimistic: Figure 5's panel ordering —
            185 W leaves at least as much silicon dark as 220 W for the
            hungriest app.
        some_dark_silicon_at_max_vf: at least one app leaves >20 % dark
            at maximum v/f under the pessimistic TDP.
        temperature_never_worse: Figure 6's direction for every app.
        dvfs_never_loses: Figure 7's direction for every app.
        patterning_helps: Figure 8's direction — the spread placer
            activates at least as many cores as the contiguous one under
            the temperature constraint.
    """

    pessimistic_darker_than_optimistic: bool
    some_dark_silicon_at_max_vf: bool
    temperature_never_worse: bool
    dvfs_never_loses: bool
    patterning_helps: bool

    @property
    def all_hold(self) -> bool:
        """Every headline shape survived."""
        return all(
            (
                self.pessimistic_darker_than_optimistic,
                self.some_dark_silicon_at_max_vf,
                self.temperature_never_worse,
                self.dvfs_never_loses,
                self.patterning_helps,
            )
        )


def evaluate_headline_shapes(
    chip: Chip,
    catalogue: Mapping[str, AppProfile],
    app_names: Sequence[str] = PARSEC_ORDER,
) -> HeadlineShapes:
    """Evaluate the headline claims for one (possibly perturbed) catalogue."""
    spread = NeighbourhoodSpreadPlacer()
    f_max = chip.node.f_max
    cap = chip.n_cores // 8

    hungriest = max(
        (catalogue[n] for n in app_names),
        key=lambda a: a.core_power(chip.node, 8, f_max, temperature=chip.t_dtm),
    )
    opt = estimate_dark_silicon(
        chip, hungriest, f_max, PowerBudgetConstraint(PAPER_TDP_OPTIMISTIC),
        placer=spread,
    )
    pess = estimate_dark_silicon(
        chip, hungriest, f_max, PowerBudgetConstraint(PAPER_TDP_PESSIMISTIC),
        placer=spread,
    )

    temperature_never_worse = True
    dvfs_never_loses = True
    any_deep_dark = pess.dark_fraction > 0.20
    for name in app_names:
        app = catalogue[name]
        under_tdp = estimate_dark_silicon(
            chip, app, f_max, PowerBudgetConstraint(PAPER_TDP_PESSIMISTIC),
            placer=spread,
        )
        under_temp = estimate_dark_silicon(
            chip, app, f_max, TemperatureConstraint(), placer=spread
        )
        if under_temp.dark_fraction > under_tdp.dark_fraction + 1e-9:
            temperature_never_worse = False
        best = best_homogeneous_configuration(
            chip, app, PAPER_TDP_PESSIMISTIC, max_instances=cap
        )
        if best.gips < under_tdp.gips - 1e-9:
            dvfs_never_loses = False

    contiguous = estimate_dark_silicon(
        chip, hungriest, f_max, TemperatureConstraint(), placer=ContiguousPlacer()
    )
    patterned = estimate_dark_silicon(
        chip, hungriest, f_max, TemperatureConstraint(), placer=spread
    )

    return HeadlineShapes(
        pessimistic_darker_than_optimistic=(
            pess.dark_fraction >= opt.dark_fraction - 1e-9
        ),
        some_dark_silicon_at_max_vf=any_deep_dark,
        temperature_never_worse=temperature_never_worse,
        dvfs_never_loses=dvfs_never_loses,
        patterning_helps=patterned.active_cores >= contiguous.active_cores,
    )


def sensitivity_sweep(
    chip: Chip,
    scales: Sequence[float] = (0.9, 1.1),
    app_names: Sequence[str] = PARSEC_ORDER,
) -> dict[tuple[str, float], HeadlineShapes]:
    """Single-axis perturbation sweep.

    Each of the three coefficient axes (``ceff``, ``pind``, ``i0``) is
    scaled by each factor in ``scales`` while the other axes stay
    nominal.

    Returns:
        ``{(axis, scale): HeadlineShapes}``.
    """
    out: dict[tuple[str, float], HeadlineShapes] = {}
    for axis in ("ceff", "pind", "i0"):
        for scale in scales:
            kwargs = {f"{axis}_scale": scale}
            catalogue = perturbed_catalogue(**kwargs)
            out[(axis, scale)] = evaluate_headline_shapes(
                chip, catalogue, app_names=app_names
            )
    return out
