"""Calibration sensitivity: are the headline shapes robust?

The PARSEC coefficient catalogue is calibrated to the paper's published
anchors (docs/calibration.md), but any reproduction must ask how much of
its conclusions depend on the exact constants.  This package perturbs
the per-application Eq. (1) coefficients by a chosen factor and
re-evaluates the paper's headline *shape* claims, so the statement
"these conclusions survive +-10 % calibration error" is checkable code
rather than an assertion.
"""

from repro.sensitivity.analysis import (
    HeadlineShapes,
    evaluate_headline_shapes,
    perturbed_app,
    perturbed_catalogue,
    sensitivity_sweep,
)

__all__ = [
    "HeadlineShapes",
    "evaluate_headline_shapes",
    "perturbed_app",
    "perturbed_catalogue",
    "sensitivity_sweep",
]
