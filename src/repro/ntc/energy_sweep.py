"""Energy-per-instruction vs supply voltage: the NTC 'U-curve'.

The classic near-threshold result (Pinckney et al., DAC 2012 — the
paper's NTC reference) is that energy per operation falls as the supply
voltage drops (dynamic energy goes with V^2) until leakage and
constant-power terms, amortised over ever slower cycles, turn the curve
back up.  The minimum-energy point sits near — usually somewhat above —
the threshold voltage.

This module sweeps Eq. (1)/Eq. (2) over the voltage axis and locates the
minimum-energy operating point per application, completing the paper's
Observation 4: NTC is the regime for *energy*-constrained operation,
not for peak performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.profile import AppProfile
from repro.errors import ConfigurationError
from repro.power.vf_curve import Region, VFCurve
from repro.tech.node import TechNode
from repro.units import gips as to_gips


@dataclass(frozen=True)
class EnergyPoint:
    """One operating point of the energy/voltage sweep.

    Attributes:
        vdd: supply voltage, V.
        frequency: Eq. (2) frequency at that voltage, Hz.
        region: Figure 2 region.
        power: Eq. (1) per-core power, W.
        gips: per-instance throughput, GIPS.
        energy_per_instruction: J per committed instruction (instance
            power over instance throughput).
    """

    vdd: float
    frequency: float
    region: Region
    power: float
    gips: float
    energy_per_instruction: float


def energy_voltage_sweep(
    app: AppProfile,
    node: TechNode,
    threads: int = 8,
    n_points: int = 60,
    temperature: float = 60.0,
    v_min: float | None = None,
) -> list[EnergyPoint]:
    """Sweep the voltage axis and report energy per instruction.

    Args:
        app: the application.
        node: technology node.
        threads: threads per instance.
        n_points: sweep resolution.
        temperature: die temperature for leakage evaluation, degC (energy
            studies run cooler than the DTM limit; 60 degC is a typical
            NTC operating temperature).
        v_min: lowest swept voltage; defaults to 5 % above the node's
            threshold voltage (below which frequency collapses and the
            energy diverges).

    Returns:
        Points in ascending voltage order.
    """
    if n_points < 2:
        raise ConfigurationError(f"need at least 2 points, got {n_points}")
    curve = VFCurve.for_node(node)
    lo = curve.vth * 1.05 if v_min is None else v_min
    if not curve.vth < lo < curve.v_limit:
        raise ConfigurationError(
            f"v_min must lie in ({curve.vth:.3f}, {curve.v_limit:.3f}) V"
        )
    hi = curve.v_limit
    points: list[EnergyPoint] = []
    model = app.power_model(node)
    n_cores = threads
    for i in range(n_points):
        v = lo + (hi - lo) * i / (n_points - 1)
        f = curve.frequency(v)
        per_core = model.power(
            f, alpha=app.utilisation(threads), temperature=temperature, vdd=v
        )
        instance_power = n_cores * per_core
        perf = app.instance_performance(threads, f)
        points.append(
            EnergyPoint(
                vdd=v,
                frequency=f,
                region=curve.region(v),
                power=per_core,
                gips=to_gips(perf),
                energy_per_instruction=instance_power / perf,
            )
        )
    return points


def minimum_energy_point(
    app: AppProfile,
    node: TechNode,
    threads: int = 8,
    n_points: int = 120,
    temperature: float = 60.0,
) -> EnergyPoint:
    """The minimum-energy operating point of the sweep."""
    points = energy_voltage_sweep(
        app, node, threads=threads, n_points=n_points, temperature=temperature
    )
    return min(points, key=lambda p: p.energy_per_instruction)
