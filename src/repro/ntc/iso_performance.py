"""ISO-performance STC-vs-NTC energy comparison (Figure 14).

The paper's setup: 24 instances per application at 11 nm.  The NTC scheme
runs each instance with 8 threads at a near-threshold operating point
(1 GHz in the paper); the STC schemes run 1 or 2 threads per instance at
the frequency that *matches the NTC performance* — possible because fewer
threads mean less Amdahl overhead, so a higher per-core frequency
compensates for the lost parallelism.  With equal performance the two
schemes execute the same work in the same time, and the energy ratio is
the power ratio.

The expected shape: for thread-scalable applications NTC wins by a wide
margin (dynamic power is cubic in frequency, so the STC single thread at
``S(8) x`` the NTC frequency is hugely expensive); for poorly scaling
applications (canneal) the ``n_threads x P_ind`` overhead of NTC's eight
barely-utilised cores makes NTC *lose* — the paper's Observation 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.apps.profile import AppProfile
from repro.errors import ConfigurationError, InfeasibleError
from repro.power.vf_curve import Region, VFCurve
from repro.tech.node import TechNode
from repro.units import GIGA, KILO, gips as to_gips


@dataclass(frozen=True)
class IsoPerformancePoint:
    """One (application, scheme) cell of the Figure 14 comparison.

    Attributes:
        app: application name.
        scheme: ``"ntc"`` or ``"stc-<k>t"``.
        threads: threads per instance.
        frequency: per-core frequency, Hz.
        voltage: minimum stable supply, V.
        region: Figure 2 region of the operating point.
        gips: total performance of all instances, GIPS.
        total_power: total Eq. (1) power of all instances, W.
        energy_kj: energy to complete the reference work, kJ.
        feasible: False when the ISO-performance frequency exceeded the
            node's voltage limit and was capped (performance then falls
            short of ISO).
    """

    app: str
    scheme: str
    threads: int
    frequency: float
    voltage: float
    region: Region
    gips: float
    total_power: float
    energy_kj: float
    feasible: bool


def stc_frequency_for_iso(
    app: AppProfile, stc_threads: int, ntc_threads: int, ntc_frequency: float
) -> float:
    """Frequency at which ``stc_threads`` match ``ntc_threads`` @ NTC.

    ISO performance per instance requires
    ``S(k) * IPC * f_stc = S(n) * IPC * f_ntc``, hence
    ``f_stc = f_ntc * S(n) / S(k)``.
    """
    return ntc_frequency * app.speedup(ntc_threads) / app.speedup(stc_threads)


def iso_performance_comparison(
    node: TechNode,
    apps: Sequence[AppProfile],
    n_instances: int = 24,
    ntc_threads: int = 8,
    ntc_frequency: float = 1.0 * GIGA,
    stc_thread_options: Sequence[int] = (1, 2),
    reference_time: float = 10.0,
    temperature: float = 80.0,
) -> list[IsoPerformancePoint]:
    """Figure 14's grid: every app under NTC and each STC scheme.

    Args:
        node: technology node (the paper uses 11 nm).
        apps: applications to compare.
        n_instances: instances per application (paper: 24).
        ntc_threads: threads per NTC instance (paper: 8).
        ntc_frequency: the NTC operating frequency (paper: 1 GHz).
        stc_thread_options: thread counts of the STC schemes (paper: 1, 2).
        reference_time: seconds of execution at ISO performance defining
            the work unit for the energy numbers.
        temperature: leakage-evaluation temperature, degC.

    Returns:
        One :class:`IsoPerformancePoint` per (app, scheme), NTC first.
    """
    if n_instances < 1:
        raise ConfigurationError(
            f"n_instances must be at least 1, got {n_instances}"
        )
    if reference_time <= 0:
        raise ConfigurationError(
            f"reference_time must be positive, got {reference_time}"
        )
    curve = VFCurve.for_node(node)
    points: list[IsoPerformancePoint] = []
    for app in apps:
        ntc_perf = n_instances * app.instance_performance(ntc_threads, ntc_frequency)
        points.append(
            _evaluate(
                app,
                "ntc",
                ntc_threads,
                ntc_frequency,
                node,
                curve,
                n_instances,
                reference_time,
                temperature,
                iso_performance=ntc_perf,
                feasible=True,
            )
        )
        for k in stc_thread_options:
            f_iso = stc_frequency_for_iso(app, k, ntc_threads, ntc_frequency)
            feasible = True
            try:
                curve.voltage(f_iso)
            except InfeasibleError:
                f_iso = curve.f_limit
                feasible = False
            points.append(
                _evaluate(
                    app,
                    f"stc-{k}t",
                    k,
                    f_iso,
                    node,
                    curve,
                    n_instances,
                    reference_time,
                    temperature,
                    iso_performance=ntc_perf,
                    feasible=feasible,
                )
            )
    return points


def _evaluate(
    app: AppProfile,
    scheme: str,
    threads: int,
    frequency: float,
    node: TechNode,
    curve: VFCurve,
    n_instances: int,
    reference_time: float,
    temperature: float,
    iso_performance: float,
    feasible: bool,
) -> IsoPerformancePoint:
    voltage = curve.voltage(frequency)
    per_core = app.core_power(node, threads, frequency, temperature=temperature)
    total_power = n_instances * threads * per_core
    perf = n_instances * app.instance_performance(threads, frequency)
    # The work unit is reference_time seconds at ISO (= NTC) performance.
    # A feasible scheme matches ISO performance and finishes in exactly
    # reference_time; a capped scheme takes proportionally longer.
    time = reference_time * iso_performance / perf
    energy_kj = total_power * time / KILO
    return IsoPerformancePoint(
        app=app.name,
        scheme=scheme,
        threads=threads,
        frequency=frequency,
        voltage=voltage,
        region=curve.region(voltage),
        gips=to_gips(perf),
        total_power=total_power,
        energy_kj=energy_kj,
        feasible=feasible,
    )
