"""Near-Threshold Computing analysis (paper Section 6, Figure 14).

NTC trades frequency for voltage: running many threads at a
near-threshold voltage can consume far less energy than few threads at a
high STC voltage *for the same performance* — but only when the
application's thread scaling cooperates.  :mod:`repro.ntc.iso_performance`
reproduces the paper's ISO-performance energy comparison;
:mod:`repro.ntc.regions` classifies operating points into the Figure 2
regions.
"""

from repro.ntc.regions import classify_frequency, classify_voltage, region_bounds
from repro.ntc.iso_performance import (
    IsoPerformancePoint,
    iso_performance_comparison,
    stc_frequency_for_iso,
)

__all__ = [
    "classify_frequency",
    "classify_voltage",
    "region_bounds",
    "IsoPerformancePoint",
    "iso_performance_comparison",
    "stc_frequency_for_iso",
]
