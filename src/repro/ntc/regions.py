"""Operating-region classification for a technology node (Figure 2).

Thin convenience layer over :class:`repro.power.vf_curve.VFCurve`: given a
node and a voltage or frequency, report whether the operating point falls
in the NTC, STC or boosting region, and expose the region boundaries for
plotting/validation.
"""

from __future__ import annotations

from repro.power.vf_curve import Region, VFCurve
from repro.tech.node import TechNode


def classify_voltage(node: TechNode, vdd: float) -> Region:
    """Region of supply voltage ``vdd`` (V) at ``node``."""
    return VFCurve.for_node(node).region(vdd)


def classify_frequency(node: TechNode, frequency: float) -> Region:
    """Region of ``frequency`` (Hz) at its minimum stable voltage."""
    return VFCurve.for_node(node).region_of_frequency(frequency)


def region_bounds(node: TechNode) -> dict[str, tuple[float, float]]:
    """Voltage intervals of the three regions at ``node``.

    Returns:
        ``{"ntc": (vth, ntc_upper), "stc": (ntc_upper, v_nominal),
        "boost": (v_nominal, v_limit)}`` in volts.
    """
    curve = VFCurve.for_node(node)
    return {
        "ntc": (curve.vth, curve.ntc_upper),
        "stc": (curve.ntc_upper, curve.v_nominal),
        "boost": (curve.v_nominal, curve.v_limit),
    }
