"""Multi-instance workloads (paper Section 2.3).

A single PARSEC application cannot usefully occupy hundreds of cores (the
parallelism wall, Figure 4), so the paper maps *multiple instances* of
each application, every instance running 1..8 parallel dependent threads.
:class:`ApplicationInstance` is one such instance pinned to a thread count
and an operating frequency; :class:`Workload` is an ordered collection of
instances with aggregate performance/power/core accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from repro.apps.profile import AppProfile
from repro.errors import ConfigurationError
from repro.tech.node import TechNode


@dataclass(frozen=True)
class ApplicationInstance:
    """One running instance of an application.

    Attributes:
        app: the application profile.
        threads: number of parallel dependent threads (1..app.max_threads);
            the instance occupies exactly this many cores.
        frequency: operating frequency of the instance's cores in Hz.
    """

    app: AppProfile
    threads: int
    frequency: float

    def __post_init__(self) -> None:
        if not 1 <= self.threads <= self.app.max_threads:
            raise ConfigurationError(
                f"{self.app.name}: threads must be in [1, {self.app.max_threads}], "
                f"got {self.threads}"
            )
        if self.frequency < 0:
            raise ConfigurationError(
                f"frequency must be non-negative, got {self.frequency}"
            )

    @property
    def cores(self) -> int:
        """Cores occupied by this instance (one per thread)."""
        return self.threads

    @property
    def utilisation(self) -> float:
        """Per-core activity factor of this instance."""
        return self.app.utilisation(self.threads)

    def performance(self) -> float:
        """Instance throughput in instructions per second."""
        return self.app.instance_performance(self.threads, self.frequency)

    def core_power(self, node: TechNode, temperature: float = 80.0) -> float:
        """Eq. (1) power of each of the instance's cores, in W."""
        return self.app.core_power(node, self.threads, self.frequency, temperature)

    def total_power(self, node: TechNode, temperature: float = 80.0) -> float:
        """Power of the whole instance (all its cores), in W."""
        return self.cores * self.core_power(node, temperature)

    def with_frequency(self, frequency: float) -> "ApplicationInstance":
        """Copy of this instance at a different operating frequency."""
        return replace(self, frequency=frequency)


class Workload:
    """An ordered collection of application instances.

    Order matters: mapping policies place instances in workload order, so
    a workload also encodes the arrival sequence used by the paper's
    "map until the constraint is hit" experiments.
    """

    def __init__(self, instances: Iterable[ApplicationInstance] = ()) -> None:
        self._instances: list[ApplicationInstance] = list(instances)

    @classmethod
    def replicate(
        cls,
        app: AppProfile,
        n_instances: int,
        threads: int,
        frequency: float,
    ) -> "Workload":
        """``n_instances`` identical instances of ``app``.

        The paper's per-application experiments (Figures 5-7, 11-14) all
        use this homogeneous shape.
        """
        if n_instances < 0:
            raise ConfigurationError(
                f"n_instances must be non-negative, got {n_instances}"
            )
        instance = ApplicationInstance(app=app, threads=threads, frequency=frequency)
        return cls([instance] * n_instances)

    def add(self, instance: ApplicationInstance) -> None:
        """Append an instance to the workload."""
        self._instances.append(instance)

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[ApplicationInstance]:
        return iter(self._instances)

    def __getitem__(self, index: int) -> ApplicationInstance:
        return self._instances[index]

    @property
    def instances(self) -> tuple[ApplicationInstance, ...]:
        """The instances, in mapping order."""
        return tuple(self._instances)

    @property
    def total_cores(self) -> int:
        """Cores needed to run every instance simultaneously."""
        return sum(inst.cores for inst in self._instances)

    def total_performance(self) -> float:
        """Aggregate throughput in instructions per second."""
        return sum(inst.performance() for inst in self._instances)

    def total_power(self, node: TechNode, temperature: float = 80.0) -> float:
        """Aggregate Eq. (1) power of all instances, in W."""
        return sum(inst.total_power(node, temperature) for inst in self._instances)

    def truncated_to_cores(self, core_budget: int) -> "Workload":
        """Longest instance prefix fitting within ``core_budget`` cores."""
        if core_budget < 0:
            raise ConfigurationError(
                f"core_budget must be non-negative, got {core_budget}"
            )
        kept: list[ApplicationInstance] = []
        used = 0
        for inst in self._instances:
            if used + inst.cores > core_budget:
                break
            kept.append(inst)
            used += inst.cores
        return Workload(kept)

    def at_frequency(self, frequency: float) -> "Workload":
        """Copy of the workload with every instance at ``frequency``."""
        return Workload(inst.with_frequency(frequency) for inst in self._instances)
