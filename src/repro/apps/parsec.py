"""The seven PARSEC applications evaluated by the paper.

The paper evaluates x264, blackscholes, bodytrack, ferret, canneal, dedup
and swaptions (labelled a-g in Figures 5-7 and 13-14).  The coefficients
below are calibrated to the paper's published anchors rather than copied
from it (the paper publishes curves, not coefficient tables):

* Thread scaling reproduces Figure 4: at 64 threads x264 reaches ~3x,
  bodytrack ~2.4x, canneal ~1.7x, while 8-thread speed-ups stay in the
  realistic PARSEC range (canneal ~2.6x ... swaptions ~7.2x).  Swaptions,
  the classic embarrassingly parallel PARSEC kernel, gets the highest
  TLP; canneal, the cache-hostile annealer, the lowest.
* ``ceff_22nm`` for x264 makes the 22 nm single-thread power curve hit
  ~18 W at 4 GHz, matching Figure 3.  Swaptions is tuned to be the most
  power-consuming application per active core at 8 threads: the paper's
  Section 3.1 derives the pessimistic TDP (185 W) as 50 cores times its
  per-core draw, and Figure 5 attributes the deepest dark-silicon
  fractions to it.
* Per-core 8-thread powers at 16 nm / 3.6 GHz span ~2.0-3.75 W so that
  the Figure 5 sweep shows every application leaving some silicon dark
  at the top v/f levels, with the spread the paper reports (up to ~46 %
  under the pessimistic TDP).
* IPC values follow the usual PARSEC characterisation on out-of-order
  cores: compute-bound kernels (swaptions, x264, ferret) high, the
  memory-bound canneal lowest.
"""

from __future__ import annotations

from repro.apps.profile import AppProfile
from repro.errors import ConfigurationError
from repro.units import NANO

#: Paper figure label order: (a) x264 ... (g) swaptions.
PARSEC_ORDER: tuple[str, ...] = (
    "x264",
    "blackscholes",
    "bodytrack",
    "ferret",
    "canneal",
    "dedup",
    "swaptions",
)

PARSEC: dict[str, AppProfile] = {
    "x264": AppProfile(
        name="x264",
        ipc=1.6,
        parallel_fraction=0.960,
        sync_overhead=0.00458,
        ceff_22nm=2.18 * NANO,
        pind_22nm=0.50,
        i0_22nm=0.30,
    ),
    "blackscholes": AppProfile(
        name="blackscholes",
        ipc=1.3,
        parallel_fraction=0.970,
        sync_overhead=0.00300,
        ceff_22nm=1.33 * NANO,
        pind_22nm=0.40,
        i0_22nm=0.25,
    ),
    "bodytrack": AppProfile(
        name="bodytrack",
        ipc=1.4,
        parallel_fraction=0.930,
        sync_overhead=0.00500,
        ceff_22nm=2.09 * NANO,
        pind_22nm=0.45,
        i0_22nm=0.28,
    ),
    "ferret": AppProfile(
        name="ferret",
        ipc=1.5,
        parallel_fraction=0.950,
        sync_overhead=0.00400,
        ceff_22nm=2.24 * NANO,
        pind_22nm=0.50,
        i0_22nm=0.30,
    ),
    "canneal": AppProfile(
        name="canneal",
        ipc=0.9,
        parallel_fraction=0.750,
        sync_overhead=0.00510,
        ceff_22nm=2.26 * NANO,
        pind_22nm=0.60,
        i0_22nm=0.35,
    ),
    "dedup": AppProfile(
        name="dedup",
        ipc=1.2,
        parallel_fraction=0.940,
        sync_overhead=0.00450,
        ceff_22nm=1.87 * NANO,
        pind_22nm=0.50,
        i0_22nm=0.30,
    ),
    "swaptions": AppProfile(
        name="swaptions",
        ipc=1.7,
        parallel_fraction=0.990,
        sync_overhead=0.00080,
        ceff_22nm=1.82 * NANO,
        pind_22nm=0.55,
        i0_22nm=0.32,
    ),
}


def app_by_name(name: str) -> AppProfile:
    """Look up a PARSEC profile by benchmark name."""
    try:
        return PARSEC[name]
    except KeyError:
        known = ", ".join(PARSEC_ORDER)
        raise ConfigurationError(
            f"unknown application {name!r}; known applications: {known}"
        ) from None


def most_power_hungry(node, threads: int = 8, temperature: float = 80.0) -> AppProfile:
    """The application with the highest per-core power at max v/f.

    Used by the pessimistic-TDP derivation (Section 3.1).  ``node`` is a
    :class:`repro.tech.node.TechNode`.
    """
    return max(
        PARSEC.values(),
        key=lambda app: app.core_power(node, threads, node.f_max, temperature),
    )
