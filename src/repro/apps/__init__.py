"""Application model: PARSEC-style profiles, speed-up curves, workloads.

The paper characterises applications only through (a) their Amdahl's-law
thread scaling (Figure 4), (b) their Eq. (1) power coefficients, and
(c) their IPC.  :class:`repro.apps.profile.AppProfile` bundles these;
:mod:`repro.apps.parsec` provides the seven evaluated PARSEC applications
with coefficients calibrated to the paper's anchors (see DESIGN.md);
:mod:`repro.apps.workload` assembles multi-instance workloads (Section
2.3: every instance runs 1..8 parallel dependent threads).
"""

from repro.apps.profile import AppProfile
from repro.apps.speedup import (
    amdahl_speedup,
    amdahl_utilisation,
    fit_parallel_fraction,
)
from repro.apps.parsec import (
    PARSEC,
    PARSEC_ORDER,
    app_by_name,
    most_power_hungry,
)
from repro.apps.workload import ApplicationInstance, Workload

__all__ = [
    "AppProfile",
    "amdahl_speedup",
    "amdahl_utilisation",
    "fit_parallel_fraction",
    "PARSEC",
    "PARSEC_ORDER",
    "app_by_name",
    "most_power_hungry",
    "ApplicationInstance",
    "Workload",
]
