"""Thread-scaling model (paper Figure 4).

The paper derives per-application speed-up factors from gem5 simulations
combined with Amdahl's law.  Pure Amdahl cannot match both ends of the
measured curves — PARSEC applications reach healthy 8-thread speed-ups
yet saturate near 3x at 64 threads (the "parallelism wall" of *dependent*
threads) — so, like the gem5 measurements the paper blends in, we extend
Amdahl's law with a linear synchronisation-overhead term:

    S(n) = 1 / ((1 - p) + p / n + gamma * (n - 1))

``p`` is the classic parallel fraction and ``gamma`` the per-extra-thread
synchronisation cost.  ``gamma = 0`` recovers Amdahl exactly.  The
per-core utilisation (the activity factor ``alpha`` of Eq. (1)) is
``S(n) / n``.

Figure 4's anchors at 64 threads (x264 ~3x, bodytrack ~2.4x,
canneal ~1.7x) together with realistic 8-thread utilisations pin down the
``(p, gamma)`` pairs used in :mod:`repro.apps.parsec`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def amdahl_speedup(
    parallel_fraction: float, threads: int, sync_overhead: float = 0.0
) -> float:
    """Speed-up of ``threads`` parallel dependent threads over one thread.

    Args:
        parallel_fraction: the parallelisable share ``p`` in [0, 1].
        threads: thread count, >= 1.
        sync_overhead: per-extra-thread synchronisation cost ``gamma``
            (>= 0); 0 gives classic Amdahl.

    Returns:
        ``1 / ((1 - p) + p / n + gamma (n - 1))``.
    """
    _check(parallel_fraction, threads, sync_overhead)
    p = parallel_fraction
    n = threads
    return 1.0 / ((1.0 - p) + p / n + sync_overhead * (n - 1))


def temperature_limited_speedup(
    parallel_fraction: float,
    threads: int,
    frequency_scale: float,
    sync_overhead: float = 0.0,
    serial_frequency_scale: float | None = None,
) -> float:
    """Extended-Amdahl speed-up with a thermal frequency derating.

    The 3D-stacking literature (Yavits et al., "The Effect of Temperature
    on Amdahl Law in 3D Multicore Era") observes that once a chip is
    thermally limited, every phase runs at the highest *thermally safe*
    frequency rather than the nominal one.  With the serial and parallel
    phases derated to fractions ``f_s`` and ``f_p`` of nominal, the
    execution-time model becomes

        S(n) = 1 / ((1 - p) / f_s + (p / n + gamma (n - 1)) / f_p)

    normalised to a single thread at *nominal* frequency.  Both scales at
    1.0 recover :func:`amdahl_speedup` exactly; by default the serial
    phase is derated like the parallel one (the DVFS governor holds the
    chip-wide thermally safe operating point), which is what produces the
    thermally limited scalability knee: past the knee, adding threads
    buys less Amdahl parallelism than the extra heat takes away in
    frequency.

    Args:
        parallel_fraction: the parallelisable share ``p`` in [0, 1].
        threads: thread count, >= 1.
        frequency_scale: parallel-phase frequency as a fraction of
            nominal, in (0, 1].
        sync_overhead: per-extra-thread synchronisation cost ``gamma``.
        serial_frequency_scale: serial-phase frequency fraction; defaults
            to ``frequency_scale``.
    """
    _check(parallel_fraction, threads, sync_overhead)
    if serial_frequency_scale is None:
        serial_frequency_scale = frequency_scale
    for name, scale in (
        ("frequency_scale", frequency_scale),
        ("serial_frequency_scale", serial_frequency_scale),
    ):
        if not 0.0 < scale <= 1.0:
            raise ConfigurationError(
                f"{name} must be in (0, 1], got {scale}"
            )
    p = parallel_fraction
    n = threads
    return 1.0 / (
        (1.0 - p) / serial_frequency_scale
        + (p / n + sync_overhead * (n - 1)) / frequency_scale
    )


def amdahl_utilisation(
    parallel_fraction: float, threads: int, sync_overhead: float = 0.0
) -> float:
    """Average per-core activity factor of an ``n``-thread instance.

    Equals ``S(n) / n``; 1.0 for a single thread, decreasing with more
    threads as serialisation and synchronisation leave cores idle.
    """
    return amdahl_speedup(parallel_fraction, threads, sync_overhead) / threads


def saturation_threads(parallel_fraction: float, sync_overhead: float) -> int:
    """Thread count at which the speed-up curve peaks.

    With ``gamma > 0`` the curve has an interior maximum at
    ``n* = sqrt(p / gamma)`` (continuous optimum); the better of the two
    neighbouring integers is returned.  With ``gamma == 0`` the speed-up
    is monotone, so there is no finite peak and a
    :class:`ConfigurationError` is raised.
    """
    _check(parallel_fraction, 1, sync_overhead)
    if sync_overhead == 0.0:  # repro-lint: disable=DS102 - exact user-supplied zero, range-checked above
        raise ConfigurationError(
            "pure Amdahl speed-up is monotone; no finite saturation point"
        )
    if parallel_fraction == 0.0:  # repro-lint: disable=DS102 - exact user-supplied zero, range-checked above
        return 1
    n_star = (parallel_fraction / sync_overhead) ** 0.5
    lo = max(1, int(n_star))
    candidates = (lo, lo + 1)
    return max(
        candidates,
        key=lambda n: amdahl_speedup(parallel_fraction, n, sync_overhead),
    )


def fit_parallel_fraction(threads: int, speedup: float) -> float:
    """Parallel fraction yielding ``speedup`` at ``threads`` (gamma = 0).

    Inverts classic Amdahl:  ``p = (1 - 1/S) / (1 - 1/n)``.

    Raises:
        ConfigurationError: if the observed speed-up is impossible
            (below 1 or above ``threads``) or ``threads < 2``.
    """
    if threads < 2:
        raise ConfigurationError(
            f"fitting needs at least 2 threads, got {threads}"
        )
    if not 1.0 <= speedup <= threads:
        raise ConfigurationError(
            f"speed-up must lie in [1, {threads}], got {speedup}"
        )
    return (1.0 - 1.0 / speedup) / (1.0 - 1.0 / threads)


def fit_scaling(
    threads_a: int, speedup_a: float, threads_b: int, speedup_b: float
) -> tuple[float, float]:
    """Fit ``(p, gamma)`` through two measured (threads, speed-up) points.

    Solves the 2x2 linear system given by the extended-Amdahl identity
    ``1/S = (1 - p) + p/n + gamma (n - 1)`` at both points.

    Raises:
        ConfigurationError: if the points are degenerate or the fit
            leaves the physical ranges ``0 <= p <= 1``, ``gamma >= 0``.
    """
    if threads_a == threads_b:
        raise ConfigurationError("need two distinct thread counts")
    for n, s in ((threads_a, speedup_a), (threads_b, speedup_b)):
        if n < 1 or s < 1.0:
            raise ConfigurationError(
                f"invalid measurement (threads={n}, speedup={s})"
            )
    # 1/S - 1 = p (1/n - 1) + gamma (n - 1)
    ca, cb = 1.0 / speedup_a - 1.0, 1.0 / speedup_b - 1.0
    aa, ab = 1.0 / threads_a - 1.0, 1.0 / threads_b - 1.0
    ba, bb = threads_a - 1.0, threads_b - 1.0
    det = aa * bb - ab * ba
    if abs(det) < 1e-15:
        raise ConfigurationError("degenerate measurement pair")
    p = (ca * bb - cb * ba) / det
    gamma = (aa * cb - ab * ca) / det
    if not 0.0 <= p <= 1.0 or gamma < 0.0:
        raise ConfigurationError(
            f"fit left physical range: p={p:.4f}, gamma={gamma:.6f}"
        )
    return p, gamma


def _check(parallel_fraction: float, threads: int, sync_overhead: float) -> None:
    if not 0.0 <= parallel_fraction <= 1.0:
        raise ConfigurationError(
            f"parallel_fraction must be in [0, 1], got {parallel_fraction}"
        )
    if threads < 1:
        raise ConfigurationError(f"threads must be >= 1, got {threads}")
    if sync_overhead < 0.0:
        raise ConfigurationError(
            f"sync_overhead must be non-negative, got {sync_overhead}"
        )
