"""Per-application characterisation consumed by every experiment.

An :class:`AppProfile` is the library's substitute for a (gem5, McPAT)
trace: it carries the application's IPC, its Amdahl parallel fraction
(Figure 4), and its 22 nm Eq. (1) power coefficients (Figure 3), from
which performance and power at any thread count, frequency and technology
node can be derived analytically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.apps.speedup import amdahl_speedup, amdahl_utilisation, fit_scaling
from repro.errors import ConfigurationError
from repro.power.leakage import LeakageModel
from repro.power.model import CorePowerModel
from repro.tech.node import TechNode


@dataclass(frozen=True)
class AppProfile:
    """One application's performance and power characteristics.

    Attributes:
        name: PARSEC benchmark name (e.g. ``"x264"``).
        ipc: average committed instructions per cycle of one thread on
            the Alpha 21264 out-of-order core (a proxy for ILP).
        parallel_fraction: Amdahl's-law parallel share in [0, 1]
            (a proxy for TLP).
        sync_overhead: per-extra-thread synchronisation cost ``gamma`` of
            the extended speed-up law (see :mod:`repro.apps.speedup`).
        ceff_22nm: effective switching capacitance at 22 nm, in F.
        pind_22nm: execution-mode independent power at 22 nm, in W.
        i0_22nm: leakage current at the 22 nm reference point, in A.
        max_threads: the paper runs each instance with 1..8 parallel
            dependent threads (Section 2.3).
    """

    name: str
    ipc: float
    parallel_fraction: float
    ceff_22nm: float
    pind_22nm: float
    i0_22nm: float
    sync_overhead: float = 0.0
    max_threads: int = 8

    def __post_init__(self) -> None:
        if self.ipc <= 0:
            raise ConfigurationError(f"ipc must be positive, got {self.ipc}")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ConfigurationError(
                f"parallel_fraction must be in [0, 1], got {self.parallel_fraction}"
            )
        if self.ceff_22nm <= 0:
            raise ConfigurationError(f"ceff_22nm must be positive, got {self.ceff_22nm}")
        if self.pind_22nm < 0 or self.i0_22nm < 0:
            raise ConfigurationError(
                "pind_22nm and i0_22nm must be non-negative, got "
                f"{self.pind_22nm} and {self.i0_22nm}"
            )
        if self.sync_overhead < 0:
            raise ConfigurationError(
                f"sync_overhead must be non-negative, got {self.sync_overhead}"
            )
        if self.max_threads < 1:
            raise ConfigurationError(f"max_threads must be >= 1, got {self.max_threads}")

    @classmethod
    def from_measurements(
        cls,
        name: str,
        ipc: float,
        scaling_points: Sequence[tuple[int, float]],
        power_samples: Sequence[tuple[float, float]],
        max_threads: int = 8,
        measurement_temperature: float = 80.0,
    ) -> "AppProfile":
        """Characterise a new application from raw measurements.

        This is the paper's Figure 1 tool flow for a user's own workload:
        two (threads, speed-up) points pin the extended-Amdahl scaling
        (Figure 4 methodology) and a single-thread (frequency, power)
        sweep at 22 nm pins the Eq. (1) coefficients (Figure 3
        methodology, non-negative least squares).

        Args:
            name: application name.
            ipc: single-thread instructions per cycle.
            scaling_points: exactly two measured ``(threads, speedup)``
                pairs with distinct thread counts.
            power_samples: at least three ``(frequency_hz, power_w)``
                single-thread samples at 22 nm.
            max_threads: per-instance thread cap.
            measurement_temperature: die temperature of the power
                samples, degC.

        Raises:
            ConfigurationError: on malformed inputs or an unphysical fit.
        """
        if len(scaling_points) != 2:
            raise ConfigurationError(
                f"need exactly two scaling points, got {len(scaling_points)}"
            )
        (n_a, s_a), (n_b, s_b) = scaling_points
        p, gamma = fit_scaling(n_a, s_a, n_b, s_b)

        # Imported here: repro.power.calibration depends on scipy only;
        # keeping it out of module import keeps AppProfile lightweight.
        from repro.power.calibration import fit_power_model
        from repro.power.vf_curve import VFCurve
        from repro.tech.library import NODE_22NM

        frequencies = [f for f, _ in power_samples]
        powers = [w for _, w in power_samples]
        fit = fit_power_model(
            frequencies,
            powers,
            curve=VFCurve.for_node(NODE_22NM),
            leakage_shape=LeakageModel(i0=1.0),
            alpha=1.0,
            temperature=measurement_temperature,
        )
        return cls(
            name=name,
            ipc=ipc,
            parallel_fraction=p,
            sync_overhead=gamma,
            ceff_22nm=fit.model.ceff,
            pind_22nm=fit.model.pind,
            i0_22nm=fit.model.leakage.i0,
            max_threads=max_threads,
        )

    def speedup(self, threads: int) -> float:
        """Speed-up of an instance running ``threads`` threads."""
        return amdahl_speedup(self.parallel_fraction, threads, self.sync_overhead)

    def utilisation(self, threads: int) -> float:
        """Per-core activity factor ``alpha`` at ``threads`` threads."""
        return amdahl_utilisation(self.parallel_fraction, threads, self.sync_overhead)

    def instance_performance(self, threads: int, frequency: float) -> float:
        """Throughput of one instance, in instructions per second.

        One thread commits ``ipc * f`` instructions per second; an
        ``n``-thread instance scales that by the Amdahl speed-up.
        """
        if frequency < 0:
            raise ConfigurationError(f"frequency must be non-negative, got {frequency}")
        return self.speedup(threads) * self.ipc * frequency

    def power_model(self, node: TechNode, inactive_power: float = 0.0) -> CorePowerModel:
        """Eq. (1) model for this application scaled to ``node``."""
        return CorePowerModel.at_node(
            node,
            ceff_22nm=self.ceff_22nm,
            pind_22nm=self.pind_22nm,
            leakage_22nm=LeakageModel(i0=self.i0_22nm),
            inactive_power=inactive_power,
        )

    def core_power(
        self,
        node: TechNode,
        threads: int,
        frequency: float,
        temperature: float = 80.0,
    ) -> float:
        """Eq. (1) power of one core of an ``n``-thread instance, in W."""
        model = self.power_model(node)
        return model.power(
            frequency, alpha=self.utilisation(threads), temperature=temperature
        )
