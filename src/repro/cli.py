"""Command-line entry point: regenerate any paper figure as a text table.

Usage::

    darksilicon list                 # available experiments
    darksilicon fig5                 # one figure
    darksilicon fig11 --quick       # shortened transients
    darksilicon all                  # everything (slow figures shortened
                                     # unless --full is given)

Each experiment prints the rows the corresponding paper figure plots;
EXPERIMENTS.md records how they compare against the published values.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    ext_projection,
    ext_sensitivity,
    summary,
    ext_runtime,
    fig01_scaling,
    fig02_vf_curve,
    fig03_power_fit,
    fig04_speedup,
    fig05_tdp_dark_silicon,
    fig06_temperature_constraint,
    fig07_dvfs,
    fig08_patterning,
    fig09_dsrem,
    fig10_tsp,
    fig11_boosting_transient,
    fig12_boosting_sweep,
    fig13_boosting_apps,
    fig14_ntc,
)

_QUICK_DURATION = 2.0
_FULL_FIG11_DURATION = 100.0
_FULL_BOOST_DURATION = 5.0


def _runners(quick: bool) -> dict[str, Callable[[], object]]:
    fig11_duration = _QUICK_DURATION if quick else _FULL_FIG11_DURATION
    boost_duration = _QUICK_DURATION if quick else _FULL_BOOST_DURATION
    return {
        "fig1": fig01_scaling.run,
        "fig2": fig02_vf_curve.run,
        "fig3": fig03_power_fit.run,
        "fig4": fig04_speedup.run,
        "fig5": fig05_tdp_dark_silicon.run,
        "fig6": fig06_temperature_constraint.run,
        "fig7": fig07_dvfs.run,
        "fig8": fig08_patterning.run,
        "fig9": fig09_dsrem.run,
        "fig10": fig10_tsp.run,
        "fig11": lambda: fig11_boosting_transient.run(duration=fig11_duration),
        "fig12": lambda: fig12_boosting_sweep.run(boost_duration=boost_duration),
        "fig13": lambda: fig13_boosting_apps.run(boost_duration=boost_duration),
        "fig14": fig14_ntc.run,
        "runtime": lambda: ext_runtime.run(
            n_jobs=20 if quick else 60
        ),
        "projection": ext_projection.run,
        "sensitivity": ext_sensitivity.run,
        "summary": lambda: summary.run(
            transient_duration=_QUICK_DURATION if quick else 5.0
        ),
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="darksilicon",
        description="Regenerate figures of 'New Trends in Dark Silicon' (DAC 2015).",
    )
    parser.add_argument(
        "experiment",
        help="experiment name (fig1..fig14), 'all', or 'list'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorten the transient simulations (figures 11-13)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also export each experiment's rows to DIR/<name>.csv",
    )
    args = parser.parse_args(argv)

    runners = _runners(args.quick)
    if args.experiment == "list":
        for name in runners:
            print(name)
        return 0

    if args.experiment == "all":
        names = list(runners)
    elif args.experiment in runners:
        names = [args.experiment]
    else:
        print(
            f"unknown experiment {args.experiment!r}; try 'list'",
            file=sys.stderr,
        )
        return 2

    csv_dir = None
    if args.csv:
        from pathlib import Path

        csv_dir = Path(args.csv)
        csv_dir.mkdir(parents=True, exist_ok=True)

    for name in names:
        started = time.time()
        result = runners[name]()
        elapsed = time.time() - started
        print(f"=== {name} ({elapsed:.1f} s) ===")
        print(result.table())
        if csv_dir is not None:
            from repro.io import result_to_csv

            target = result_to_csv(result, csv_dir / f"{name}.csv")
            print(f"[rows exported to {target}]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
