"""Command-line entry point: the experiment registry as a service.

Usage::

    darksilicon list                     # registered experiments
    darksilicon describe fig11           # parameter schema + defaults
    darksilicon run fig5                 # one figure
    darksilicon fig5                     # same (legacy spelling)
    darksilicon run fig11 --quick        # shortened transients
    darksilicon run fig11 --params duration=1.5 n_instances=6
    darksilicon run all --keep-going     # everything; report failures
    darksilicon run fig10 --store .cache # serve/persist via the store
    darksilicon batch --quick --store .cache   # all cells, cached
    darksilicon batch --quick --store .cache --expect-cached
    darksilicon obs                      # instrumented demo (pure JSON)
    darksilicon run fig10 --profile --trace-out trace.json  # span timeline
    darksilicon run fig10 --sample-out s.jsonl --sample-interval 0.1
    darksilicon obs tail --follow s.jsonl      # pretty-print the samples
    darksilicon obs watch --snapshot snap.json # budgets verdicts
    darksilicon obs prom --snapshot snap.json  # Prometheus exposition
    darksilicon report                   # render the markdown dashboard

Every experiment is dispatched through
:mod:`repro.experiments.registry`: ``--params key=value`` overrides are
validated against the experiment's typed schema (aliases like
``boost_duration`` still work), ``--quick`` applies the schema's
quick-mode values, and ``--store DIR`` routes execution through the
content-addressed artifact store (:mod:`repro.store`) so repeated runs
are served from disk.  ``--force`` bypasses the store and overwrites.

``batch`` executes a set of cells through
:class:`repro.store.BatchRunner`: warm cells come straight from the
store (no worker processes), cold cells optionally fan out across
``--workers`` processes, and ``summary`` runs last so it consumes the
sibling artifacts the same batch just produced.  ``--expect-cached``
makes a warm run a testable assertion (used by ``make figures-smoke``).

``--profile`` enables the :mod:`repro.obs` registry for the run and
appends its snapshot (solver calls, cache traffic, store hits/misses,
sweep stages) after the tables; ``--profile-out`` additionally writes
it to a file (``.csv`` suffix selects CSV, anything else JSON).
``--trace-out PATH`` (implies ``--profile``) records the span timeline
— begin/end events with pid/tid, worker events re-based onto the parent
clock — writes it as Chrome trace-event JSON to PATH and prints a
plain-text flame summary.

The continuous-telemetry flags (all imply ``--profile``; see
``docs/observability.md``): ``--sample-out PATH`` runs a background
:class:`~repro.obs.sampler.SnapshotSampler` streaming interval-delta
JSONL records for the duration of the command, ``--sample-interval S``
sets its tick, and ``--attribution`` records per-span memory histograms
(``<span>.mem.*``) via tracemalloc.  The ``obs`` subcommand grew
matching actions: ``obs tail --follow FILE`` pretty-prints a sink,
``obs watch`` evaluates ``benchmarks/budgets.json`` budget verdicts
against a snapshot (exit 1 on hard violations), and ``obs prom``
renders a snapshot as Prometheus text exposition.

Every ``run``/``batch`` with ``--store`` also appends one
:class:`repro.obs.manifest.RunManifest` line per cell to the store's
``runs.jsonl`` ledger; ``darksilicon report`` renders that ledger plus
``BENCH_TRACK.json`` into a markdown dashboard under ``reports/``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Optional

from repro import obs
from repro.errors import ConfigurationError
from repro.experiments import registry
from repro.experiments.common import experiment_span
from repro.io import result_to_csv
from repro.thermal.backends import (
    BACKEND_ENV_VAR,
    backend_names,
    default_backend_name,
    set_default_backend,
)

#: Pseudo-experiment names the CLI accepts beyond the registry.
_PSEUDO = ("all", "obs")


def _run_obs_demo() -> dict:
    """A small instrumented workload touching every hot subsystem.

    Exercises the thermal solvers, the batched engine and its caches,
    the shared TSP tables, a sweep stage, the online runtime with its
    policy decisions, the estimator and DTM enforcement — on a reduced
    4x4 chip so the whole demo finishes in about a second — and returns
    the resulting registry snapshot.
    """
    import numpy as np

    from repro.apps.parsec import PARSEC
    from repro.apps.workload import ApplicationInstance, Workload
    from repro.chip import Chip
    from repro.core.estimator import map_workload
    from repro.core.constraints import PowerBudgetConstraint
    from repro.core.tsp import ThermalSafePower
    from repro.dtm.enforcement import enforce
    from repro.perf.sweep import SweepRunner
    from repro.runtime import (
        OnlineSimulator,
        TspAdaptivePolicy,
        deterministic_job_stream,
    )
    from repro.tech.library import node_by_name
    from repro.thermal.transient import TransientSimulator

    import tempfile

    from repro.obs.sampler import SnapshotSampler

    obs.enable()
    obs.reset()
    obs.validate_names()
    # Per-span memory attribution, so the demo snapshot carries
    # ``.mem.*`` histograms next to the duration aggregates.
    obs.enable_attribution()
    sampler = SnapshotSampler(obs.REGISTRY, interval_s=60.0)
    chip = Chip.grid_chip(node_by_name("16nm"), 4, 4)
    with experiment_span("obs-demo"):
        # TSP tables + batched-engine solves through a sweep stage.
        tsp = ThermalSafePower(chip)
        runner = SweepRunner()
        runner.map([2, 4, 8, 12], tsp.worst_case, stage="tsp_counts")
        tsp.table()

        # The online event loop: admissions, policy decisions, the
        # engine's quantized peak-temperature cache.
        apps = [PARSEC["x264"], PARSEC["swaptions"]]
        jobs = deterministic_job_stream(
            apps, n_jobs=6, mean_interarrival=0.5, work=20e9, seed=7
        )
        OnlineSimulator(chip, TspAdaptivePolicy(tsp, threads=2)).run(jobs)

        # Estimation + DTM enforcement on an optimistic-TDP mapping.
        workload = Workload(
            [
                ApplicationInstance(
                    PARSEC["x264"], threads=2, frequency=chip.node.f_max
                )
            ]
            * 6
        )
        mapped = map_workload(
            chip,
            workload,
            PowerBudgetConstraint(400.0),
            stop_at_first_rejection=False,
        )
        enforce(mapped)

        # A short closed-loop transient.
        sim = TransientSimulator(chip.thermal, dt=1e-3)
        idle = np.full(chip.n_cores, 2.0)
        sim.simulate(lambda t, temps: idle, duration=0.02)

        # One continuous-telemetry round: a synchronous sampler tick
        # (interval delta + process.* gauges) and a ring flush, so the
        # demo emits the sampler's own obs.sampler.* names too.
        sampler.sample_now()
        with tempfile.TemporaryDirectory() as tmp:
            sampler.flush(Path(tmp) / "samples.jsonl")
    obs.disable_attribution()
    return obs.snapshot()


def _export_snapshot(
    snap: dict, out_path: Optional[str], banner: bool = True
) -> None:
    """The one profile-snapshot exporter every command shares.

    Prints the snapshot as JSON (preceded by a banner unless the caller
    needs pure-JSON stdout, as ``obs`` does) and optionally writes it to
    ``out_path`` — ``.csv`` suffix selects CSV, anything else JSON.
    """
    if banner:
        print("=== observability ===")
    print(obs.to_json(snap))
    if out_path:
        target = Path(out_path)
        if target.suffix == ".csv":
            obs.to_csv(snap, target)
        else:
            obs.to_json(snap, target)
        if banner:
            print(f"[observability snapshot written to {target}]")


def _export_trace(trace_out: Optional[str], quiet: bool = False) -> None:
    """Write the collected span timeline as Chrome trace-event JSON.

    Also prints the plain-text flame summary, unless the caller needs
    stdout kept clean (``obs``'s pure-JSON contract).
    """
    if not trace_out:
        return
    events = obs.trace_events()
    obs.to_chrome_trace(events, trace_out)
    if not quiet:
        print(f"=== trace ({len(events)} events -> {trace_out}) ===")
        print(obs.flame_summary(events))


def _start_profiling(args):
    """Flip the per-run observability switches; maybe start a sampler.

    Returns the running :class:`~repro.obs.sampler.SnapshotSampler`
    when ``--sample-out`` asked for one, else ``None``.  The caller
    must stop it (``_stop_profiling``) so the JSONL sink closes with a
    final sample.
    """
    if args.profile:
        obs.enable()
    if args.trace_out:
        obs.enable_trace()
    if getattr(args, "attribution", False):
        obs.enable_attribution()
    if not getattr(args, "sample_out", None):
        return None
    from repro.obs.sampler import SnapshotSampler

    return SnapshotSampler(
        obs.REGISTRY,
        interval_s=args.sample_interval,
        sink=args.sample_out,
    ).start()


def _stop_profiling(sampler, args=None) -> None:
    """Undo ``_start_profiling``: stop the sampler, release the tracer.

    The snapshot survives (``_export_snapshot`` reads it afterwards);
    only the attribution mode — and with it the tracemalloc tracer —
    is switched back off so it cannot outlive the run it was asked for.
    """
    if sampler is not None:
        sampler.stop()
    if args is not None and getattr(args, "attribution", False):
        obs.disable_attribution()


def _open_store(args):
    """The artifact store named by ``--store``, or ``None``."""
    if not getattr(args, "store", None):
        return None
    from repro.store import ArtifactStore

    return ArtifactStore(args.store)


def _csv_dir(args) -> Optional[Path]:
    """The ``--csv`` export directory, created on demand."""
    if not getattr(args, "csv", None):
        return None
    target = Path(args.csv)
    target.mkdir(parents=True, exist_ok=True)
    return target


def _export_rows(result, name: str, csv_dir: Optional[Path]) -> None:
    if csv_dir is not None:
        target = result_to_csv(result, csv_dir / f"{name}.csv")
        print(f"[rows exported to {target}]")


def _cmd_list(args) -> int:
    """``list``: every registered experiment, plus the obs demo."""
    import fnmatch

    names = registry.names() + ["obs"]
    if args.family:
        names = [n for n in names if fnmatch.fnmatchcase(n, args.family)]
        if not names:
            print(
                f"no experiment matches family {args.family!r}; "
                "try 'list' without --family",
                file=sys.stderr,
            )
            return 2
    if args.long:
        width = max(len(n) for n in names)
        for name in names:
            if name == "obs":
                print(f"{'obs':<{width}}  instrumented demo; prints the "
                      "registry snapshot as JSON")
            else:
                print(f"{name:<{width}}  {registry.get(name).title}")
    else:
        for name in names:
            print(name)
    return 0


def _cmd_describe(args) -> int:
    """``describe``: one experiment's schema, defaults and aliases."""
    try:
        spec = registry.get(args.experiment)
    except ConfigurationError:
        print(
            f"unknown experiment {args.experiment!r}; try 'list'",
            file=sys.stderr,
        )
        return 2
    print(f"name:        {spec.name}")
    print(f"title:       {spec.title}")
    print(f"module:      {spec.module}")
    if spec.result_type is not None:
        print(f"result:      {spec.result_type.__name__}")
    print(f"fingerprint: {spec.fingerprint()}")
    if spec.store_aware:
        print("store-aware: consumes sibling artifacts when --store is given")
    if not spec.params:
        print("parameters:  (none)")
        return 0
    print("parameters:")
    for p in spec.params:
        quick = "" if p.quick is registry.UNSET else f"  [quick: {p.quick!r}]"
        aliases = f"  (aliases: {', '.join(p.aliases)})" if p.aliases else ""
        print(f"  {p.name} ({p.kind}) = {p.default!r}{quick}{aliases}")
        if p.help:
            print(f"      {p.help}")
    return 0


def _cmd_run(args) -> int:
    """``run``: one experiment, or ``all`` of them sequentially."""
    if args.experiment == "obs":
        return _cmd_obs(args)
    known = registry.names()
    if args.experiment != "all" and args.experiment not in known:
        print(
            f"unknown experiment {args.experiment!r}; try 'list'",
            file=sys.stderr,
        )
        return 2
    names = known if args.experiment == "all" else [args.experiment]
    if args.params and len(names) > 1:
        print("--params requires a single experiment, not 'all'", file=sys.stderr)
        return 2

    sampler = _start_profiling(args)
    store = _open_store(args)
    csv_dir = _csv_dir(args)

    from repro.store.batch import fetch_or_run

    failures: list[tuple[str, str]] = []
    for name in names:
        spec = registry.get(name)
        try:
            overrides = spec.parse_overrides(args.params or [])
            params = spec.resolve(overrides, quick=args.quick)
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        started = time.perf_counter()
        try:
            with experiment_span(name):
                result, cached = fetch_or_run(
                    spec,
                    params,
                    store=store,
                    force=args.force,
                    trace_path=args.trace_out,
                )
        except Exception as exc:  # noqa: BLE001 - per-experiment report
            if not args.keep_going:
                raise
            failures.append((name, f"{type(exc).__name__}: {exc}"))
            print(f"=== {name} FAILED ({type(exc).__name__}: {exc}) ===")
            print()
            continue
        elapsed = time.perf_counter() - started
        origin = ", cached" if cached else ""
        print(f"=== {name} ({elapsed:.1f} s{origin}) ===")
        print(result.table())
        _export_rows(result, name, csv_dir)
        print()

    if args.keep_going and len(names) > 1:
        print("=== run report ===")
        failed = {name for name, _ in failures}
        for name in names:
            print(f"{name:<12} {'FAIL' if name in failed else 'ok'}")
        for name, reason in failures:
            print(f"[{name}] {reason}")
    _stop_profiling(sampler, args)
    if args.profile:
        _export_snapshot(obs.snapshot(), args.profile_out)
    _export_trace(args.trace_out)
    return 1 if failures else 0


def _cmd_batch(args) -> int:
    """``batch``: a set of cells through the store-backed runner."""
    names = args.experiments or registry.names()
    unknown = [n for n in names if n not in registry.names()]
    if unknown:
        print(
            f"unknown experiment(s) {', '.join(map(repr, unknown))}; "
            "try 'list'",
            file=sys.stderr,
        )
        return 2
    sampler = _start_profiling(args)
    store = _open_store(args)
    csv_dir = _csv_dir(args)

    from repro.perf.sweep import SweepRunner
    from repro.store.batch import BatchCell, BatchRunner

    cells = [
        BatchCell(name, registry.get(name).resolve(quick=args.quick))
        for name in names
    ]
    runner = BatchRunner(store=store, sweep=SweepRunner(args.workers))
    started = time.perf_counter()
    outcomes = runner.run(cells, force=args.force, trace_path=args.trace_out)
    elapsed = time.perf_counter() - started

    for o in outcomes:
        status = "cached" if o.cached else ("ran" if o.ok else "FAILED")
        line = f"{o.cell.experiment:<12} {status:<7} {o.seconds:8.2f} s"
        if o.error:
            line += f"  {o.error}"
        print(line)
        if o.ok and args.tables:
            print(o.result.table())
            print()
        if o.ok:
            _export_rows(o.result, o.cell.experiment, csv_dir)
    cached = sum(o.cached for o in outcomes)
    executed = sum(o.ok and not o.cached for o in outcomes)
    failed = sum(not o.ok for o in outcomes)
    print(
        f"[batch] {len(outcomes)} cells: {cached} cached, "
        f"{executed} executed, {failed} failed in {elapsed:.1f} s"
    )
    if store is not None:
        stats = ", ".join(f"{k}={v}" for k, v in store.counters.items())
        print(f"[store] {stats}")
    _stop_profiling(sampler, args)
    if args.profile:
        _export_snapshot(obs.snapshot(), args.profile_out)
    _export_trace(args.trace_out)
    if failed:
        return 1
    if args.expect_cached and cached != len(outcomes):
        print(
            f"--expect-cached: only {cached}/{len(outcomes)} cells were "
            "served from the store",
            file=sys.stderr,
        )
        return 3
    return 0


def _obs_action_snapshot(args) -> dict:
    """The snapshot an ``obs`` action operates on.

    ``--snapshot PATH`` loads a previously exported JSON snapshot (the
    ``--profile-out`` format); without it the instrumented demo runs
    and its snapshot is used.
    """
    if getattr(args, "snapshot", None):
        import json

        return json.loads(Path(args.snapshot).read_text())
    return _run_obs_demo()


def _format_sample(record: dict, top: int) -> str:
    """Pretty one-block rendering of a sampler JSONL record."""
    lines = [
        f"-- sample #{record.get('seq', '?')}"
        f"  uptime {record.get('uptime_s', 0.0):8.2f} s"
        f"  interval {record.get('interval_s', 0.0):g} s"
    ]
    process = record.get("process", {})
    if process:
        mib = 1024.0 * 1024.0
        lines.append(
            f"   rss {process.get('rss_bytes', 0) / mib:9.1f} MiB"
            f"  peak {process.get('max_rss_bytes', 0) / mib:9.1f} MiB"
            f"  cpu u {process.get('cpu_user_s', 0.0):7.2f} s"
            f" / s {process.get('cpu_system_s', 0.0):6.2f} s"
            f"  gc {process.get('gc_collections', 0)}"
            f"  thr {process.get('threads', 0)}"
        )
    delta = record.get("delta", {})
    spans = {**delta.get("timers", {}), **delta.get("spans", {})}
    hot = sorted(
        spans.items(), key=lambda kv: kv[1]["total_s"], reverse=True
    )[:top]
    for name, agg in hot:
        lines.append(
            f"   {agg['total_s']:10.4f} s  x{agg['count']:<6d} {name}"
        )
    counters = sorted(
        delta.get("counters", {}).items(),
        key=lambda kv: kv[1],
        reverse=True,
    )[:top]
    for name, value in counters:
        lines.append(f"   {value:10g}    {name}")
    return "\n".join(lines)


def _cmd_obs_tail(args) -> int:
    """``obs tail``: pretty-print interval samples from a JSONL sink."""
    from repro.obs.exporters import read_jsonl

    if not args.follow:
        print(
            "obs tail needs --follow FILE (a sampler's --sample-out "
            "JSONL sink)",
            file=sys.stderr,
        )
        return 2
    target = int(args.count) if args.count else None
    shown = 0
    seen = 0
    while True:
        records = list(read_jsonl(args.follow))
        for record in records[seen:]:
            print(_format_sample(record, top=args.top))
            shown += 1
            if target and shown >= target:
                return 0
        seen = len(records)
        if not target:
            # Drain-and-exit mode: print what the sink holds, stop.
            return 0
        time.sleep(args.interval)


def _cmd_obs_watch(args) -> int:
    """``obs watch``: evaluate budgets against a snapshot."""
    from repro.obs import watch

    try:
        budgets = watch.load_budgets(args.budgets)
        snap = _obs_action_snapshot(args)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    verdicts = watch.evaluate(budgets, snap)
    print(watch.render_verdicts(verdicts), end="")
    return 1 if watch.violations(verdicts) else 0


def _cmd_obs_prom(args) -> int:
    """``obs prom``: render a snapshot as Prometheus text exposition."""
    from repro.obs.exporters import to_prometheus

    try:
        snap = _obs_action_snapshot(args)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(to_prometheus(snap), end="")
    return 0


def _cmd_obs(args) -> int:
    """``obs``: the instrumented demo plus telemetry actions.

    ``demo`` (the default) keeps its original pure-JSON stdout
    contract; ``watch``/``prom``/``tail`` are the continuous-telemetry
    surfaces (see docs/observability.md).
    """
    action = getattr(args, "action", "demo")
    if action == "tail":
        return _cmd_obs_tail(args)
    if action == "watch":
        return _cmd_obs_watch(args)
    if action == "prom":
        return _cmd_obs_prom(args)
    if args.trace_out:
        # The demo's reset() clears events but keeps the tracing switch,
        # so enabling here is enough to capture the demo's own spans.
        obs.enable_trace()
    snap = _run_obs_demo()
    _export_snapshot(snap, args.profile_out, banner=False)
    _export_trace(args.trace_out, quiet=True)
    return 0


def _cmd_lint(args) -> int:
    """``lint``: the project-specific static analysis pass."""
    from repro import lint
    from repro.lint.engine import iter_python_files
    from repro.lint.rules import collect_metric_names

    paths = args.paths or ["src"]
    select = args.select.split(",") if args.select else None

    if args.emit_manifest:
        import ast as ast_mod

        trees = [
            (str(f), ast_mod.parse(f.read_text(), filename=str(f)))
            for f in iter_python_files(paths)
        ]
        names, prefixes = collect_metric_names(trees)
        print("# Metric-name manifest (generated by "
              "`darksilicon lint --emit-manifest`, then curated).")
        print("# One name per line; a trailing `*` is a prefix wildcard.")
        for name in sorted(names):
            print(name)
        for prefix in sorted(prefixes):
            print(f"{prefix}*")
        return 0

    manifest = None
    if args.manifest and Path(args.manifest).exists():
        manifest = lint.MetricManifest.load(args.manifest)
    elif args.manifest and args.manifest != str(Path("docs") / "metrics.txt"):
        print(f"no metric manifest at {args.manifest}", file=sys.stderr)
        return 2

    two_phase = dict(
        cache_dir=args.cache,
        jobs=args.jobs,
        program=not args.no_program,
    )

    if args.prune_manifest:
        if manifest is None:
            print("no metric manifest to prune", file=sys.stderr)
            return 2
        report = lint.lint_paths(
            paths,
            manifest=manifest,
            select=["DS302"],
            stale_manifest=True,
            jobs=args.jobs,
        )
        stale = [
            (f.message.split("'")[1], f.line)
            for f in report.findings
            if f.code == "DS302"
        ]
        removed = lint.prune_manifest(args.manifest, stale)
        print(f"[manifest: pruned {removed} stale entr(y/ies) "
              f"from {args.manifest}]")
        return 0

    if args.write_baseline:
        report = lint.lint_paths(
            paths, manifest=manifest, select=select, **two_phase
        )
        count = lint.write_baseline(args.baseline, report.findings)
        print(f"[baseline: ratified {count} finding(s) to {args.baseline}]")
        return 0

    baseline = lint.Baseline.load_if_exists(args.baseline)
    report = lint.lint_paths(
        paths, manifest=manifest, baseline=baseline, select=select, **two_phase
    )
    if args.format == "json":
        import json

        print(json.dumps(report.to_dict(), indent=2))
    elif args.format == "sarif":
        import json

        print(json.dumps(report.to_sarif(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.clean else 1


def _cmd_report(args) -> int:
    """``report``: render the markdown performance dashboard."""
    from repro import report

    out = report.generate(
        args.track,
        args.baseline,
        store_root=args.store,
        out_path=args.out,
        top=args.top,
        recent=args.recent,
    )
    print(f"[report written to {out}]")
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quick",
        action="store_true",
        help="apply the schema's quick-mode parameter values "
        "(shortened transients, smaller job streams)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also export each experiment's rows to DIR/<name>.csv",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        help="serve results from (and persist them to) a "
        "content-addressed artifact store rooted at DIR",
    )
    parser.add_argument(
        "--thermal-backend",
        choices=backend_names(),
        default=None,
        metavar="NAME",
        help="solver backend for every thermal factorisation "
        f"({', '.join(backend_names())}; default: "
        f"{default_backend_name()})",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="bypass the store and overwrite its artifacts",
    )
    _add_profile(parser)


def _add_profile(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable the observability registry and print its JSON "
        "snapshot after the tables",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        help="write the observability snapshot to PATH (.csv for CSV, "
        "anything else for JSON); implies --profile",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="record the span timeline and write it as Chrome "
        "trace-event JSON (chrome://tracing / Perfetto) to PATH; "
        "implies --profile",
    )
    parser.add_argument(
        "--sample-out",
        metavar="PATH",
        help="run a background sampler streaming interval-delta JSONL "
        "records to PATH for the duration of the command (tail them "
        "with 'obs tail --follow PATH'); implies --profile",
    )
    parser.add_argument(
        "--sample-interval",
        type=float,
        default=0.5,
        metavar="S",
        help="seconds between sampler ticks for --sample-out "
        "(default: 0.5)",
    )
    parser.add_argument(
        "--attribution",
        action="store_true",
        help="record per-span memory histograms (<span>.mem.*) via "
        "tracemalloc; implies --profile",
    )


def build_parser() -> argparse.ArgumentParser:
    """The darksilicon argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="darksilicon",
        description="Regenerate figures of 'New Trends in Dark Silicon' "
        "(DAC 2015) through the experiment registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", help="run one experiment (or 'all') and print its table"
    )
    p_run.add_argument(
        "experiment",
        help="experiment name (see 'list'), 'all', or 'obs'",
    )
    p_run.add_argument(
        "--params",
        metavar="KEY=VALUE",
        nargs="+",
        help="schema-validated parameter overrides "
        "(e.g. --params duration=1.5 n_instances=6)",
    )
    p_run.add_argument(
        "--keep-going",
        action="store_true",
        help="with 'all': keep running after a failing experiment, "
        "report per-experiment pass/fail, exit non-zero if any failed",
    )
    _add_common(p_run)

    p_batch = sub.add_parser(
        "batch",
        help="run a set of experiments through the store-backed "
        "batch runner",
    )
    p_batch.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: every registered experiment)",
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for cold cells (default: serial)",
    )
    p_batch.add_argument(
        "--tables",
        action="store_true",
        help="print each cell's full table, not just its status line",
    )
    p_batch.add_argument(
        "--expect-cached",
        action="store_true",
        help="exit 3 unless every cell was served from the store "
        "(cache-warmness assertion for CI)",
    )
    _add_common(p_batch)

    p_list = sub.add_parser("list", help="list registered experiments")
    p_list.add_argument(
        "--long", action="store_true", help="include one-line titles"
    )
    p_list.add_argument(
        "--family",
        metavar="PATTERN",
        help="only experiments matching the glob PATTERN "
        "(e.g. --family 'ext*' or --family 'fig1?')",
    )

    p_desc = sub.add_parser(
        "describe", help="show one experiment's parameter schema"
    )
    p_desc.add_argument("experiment", help="experiment name")

    p_obs = sub.add_parser(
        "obs",
        help="instrumented demo (default) plus telemetry actions: "
        "watch budgets, tail a sampler's JSONL sink, render Prometheus",
    )
    p_obs.add_argument(
        "action",
        nargs="?",
        default="demo",
        choices=("demo", "watch", "tail", "prom"),
        help="demo: run the instrumented demo and print its JSON "
        "snapshot; watch: evaluate --budgets against a snapshot; "
        "tail: pretty-print a sampler JSONL sink; prom: render a "
        "snapshot as Prometheus text exposition",
    )
    p_obs.add_argument(
        "--snapshot",
        metavar="PATH",
        help="for watch/prom: operate on this exported JSON snapshot "
        "instead of running the demo",
    )
    p_obs.add_argument(
        "--budgets",
        metavar="PATH",
        default=str(Path("benchmarks") / "budgets.json"),
        help="for watch: budgets file "
        "(default: benchmarks/budgets.json)",
    )
    p_obs.add_argument(
        "--follow",
        metavar="FILE",
        help="for tail: the sampler JSONL sink to read",
    )
    p_obs.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="S",
        help="for tail with --count: poll interval in seconds "
        "(default: 1.0)",
    )
    p_obs.add_argument(
        "--count",
        type=int,
        default=0,
        metavar="N",
        help="for tail: keep polling until N samples were printed "
        "(default: print what the sink holds and exit)",
    )
    p_obs.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="for tail: hottest timers/counters per sample (default: 5)",
    )
    _add_profile(p_obs)

    p_lint = sub.add_parser(
        "lint",
        help="run the project-specific static analysis pass "
        "(DS rules; see docs/linting.md)",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif emits SARIF 2.1.0 "
        "for CI code annotations)",
    )
    p_lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="phase-1 worker processes (default: 1)",
    )
    p_lint.add_argument(
        "--cache",
        metavar="DIR",
        help="summary-cache artifact store; warm runs skip "
        "re-summarizing files whose content hash is cached",
    )
    p_lint.add_argument(
        "--no-program",
        action="store_true",
        help="skip phase 2 (the whole-program DS302/DS5xx/DS6xx/DS7xx "
        "analysis)",
    )
    p_lint.add_argument(
        "--prune-manifest",
        action="store_true",
        help="rewrite the metric manifest dropping entries DS302 "
        "reports as stale, then exit",
    )
    p_lint.add_argument(
        "--baseline",
        metavar="PATH",
        default="lint_baseline.json",
        help="ratified-baseline file; matching findings do not gate "
        "(default: lint_baseline.json, ignored when absent)",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="ratify the current findings into the baseline file and exit",
    )
    p_lint.add_argument(
        "--manifest",
        metavar="PATH",
        default=str(Path("docs") / "metrics.txt"),
        help="metric-name manifest for DS301 "
        "(default: docs/metrics.txt, grammar-only when absent)",
    )
    p_lint.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated DS codes to run (default: all)",
    )
    p_lint.add_argument(
        "--emit-manifest",
        action="store_true",
        help="print the statically discovered metric names as manifest "
        "lines and exit (seed for docs/metrics.txt)",
    )

    p_report = sub.add_parser(
        "report",
        help="render BENCH_TRACK.json + the store's runs.jsonl ledger "
        "into a markdown performance dashboard",
    )
    p_report.add_argument(
        "--track",
        metavar="PATH",
        default="BENCH_TRACK.json",
        help="bench trajectory file (default: BENCH_TRACK.json)",
    )
    p_report.add_argument(
        "--baseline",
        metavar="PATH",
        default=str(Path("benchmarks") / "bench_baseline.json"),
        help="committed bench baseline "
        "(default: benchmarks/bench_baseline.json)",
    )
    p_report.add_argument(
        "--store",
        metavar="DIR",
        help="artifact-store root whose runs.jsonl ledger feeds the "
        "store-activity and recent-runs sections",
    )
    p_report.add_argument(
        "--out",
        metavar="PATH",
        default=str(Path("reports") / "performance.md"),
        help="where to write the report (default: reports/performance.md)",
    )
    p_report.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="hottest spans to show (default: 5)",
    )
    p_report.add_argument(
        "--recent",
        type=int,
        default=10,
        metavar="N",
        help="ledger lines to show (default: 10)",
    )

    p_lint.set_defaults(func=_cmd_lint)
    p_run.set_defaults(func=_cmd_run)
    p_batch.set_defaults(func=_cmd_batch)
    p_list.set_defaults(func=_cmd_list)
    p_desc.set_defaults(func=_cmd_describe)
    p_obs.set_defaults(func=_cmd_obs)
    p_report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Legacy spellings stay valid: a leading experiment name (or ``all``)
    is treated as ``run <name>``, so ``darksilicon fig5 --quick`` keeps
    working next to ``darksilicon run fig5 --quick``.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    commands = {"run", "batch", "list", "describe", "obs", "report", "lint"}
    if argv and not argv[0].startswith("-") and argv[0] not in commands:
        argv = ["run", *argv]
    parser = build_parser()
    args = parser.parse_args(argv)
    if (
        getattr(args, "profile_out", None)
        or getattr(args, "trace_out", None)
        or getattr(args, "sample_out", None)
        or getattr(args, "attribution", False)
    ):
        args.profile = True
    if getattr(args, "thermal_backend", None):
        # Both the in-process default and the environment: spawned
        # worker processes re-read the variable on interpreter start.
        set_default_backend(args.thermal_backend)
        os.environ[BACKEND_ENV_VAR] = args.thermal_backend
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
