"""Command-line entry point: regenerate any paper figure as a text table.

Usage::

    darksilicon list                 # available experiments
    darksilicon fig5                 # one figure
    darksilicon fig11 --quick       # shortened transients
    darksilicon all                  # everything (slow figures shortened
                                     # unless --full is given)
    darksilicon fig10 --profile     # + observability snapshot (JSON)
    darksilicon obs                  # instrumented demo; prints the
                                     # registry snapshot as pure JSON

Each experiment prints the rows the corresponding paper figure plots;
EXPERIMENTS.md records how they compare against the published values.
``--profile`` enables the :mod:`repro.obs` registry for the run and
appends its snapshot (solver calls, cache traffic, TSP table builds,
sweep stages, runtime/DTM events) after the tables; ``--profile-out``
additionally writes it to a file (``.csv`` suffix selects CSV, anything
else JSON).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro import obs
from repro.experiments import (
    ext_projection,
    ext_sensitivity,
    summary,
    ext_runtime,
    fig01_scaling,
    fig02_vf_curve,
    fig03_power_fit,
    fig04_speedup,
    fig05_tdp_dark_silicon,
    fig06_temperature_constraint,
    fig07_dvfs,
    fig08_patterning,
    fig09_dsrem,
    fig10_tsp,
    fig11_boosting_transient,
    fig12_boosting_sweep,
    fig13_boosting_apps,
    fig14_ntc,
)
from repro.experiments.common import experiment_span

_QUICK_DURATION = 2.0
_FULL_FIG11_DURATION = 100.0
_FULL_BOOST_DURATION = 5.0


def _runners(quick: bool) -> dict[str, Callable[[], object]]:
    fig11_duration = _QUICK_DURATION if quick else _FULL_FIG11_DURATION
    boost_duration = _QUICK_DURATION if quick else _FULL_BOOST_DURATION
    return {
        "fig1": fig01_scaling.run,
        "fig2": fig02_vf_curve.run,
        "fig3": fig03_power_fit.run,
        "fig4": fig04_speedup.run,
        "fig5": fig05_tdp_dark_silicon.run,
        "fig6": fig06_temperature_constraint.run,
        "fig7": fig07_dvfs.run,
        "fig8": fig08_patterning.run,
        "fig9": fig09_dsrem.run,
        "fig10": fig10_tsp.run,
        "fig11": lambda: fig11_boosting_transient.run(duration=fig11_duration),
        "fig12": lambda: fig12_boosting_sweep.run(boost_duration=boost_duration),
        "fig13": lambda: fig13_boosting_apps.run(boost_duration=boost_duration),
        "fig14": fig14_ntc.run,
        "runtime": lambda: ext_runtime.run(
            n_jobs=20 if quick else 60
        ),
        "projection": ext_projection.run,
        "sensitivity": ext_sensitivity.run,
        "summary": lambda: summary.run(
            transient_duration=_QUICK_DURATION if quick else 5.0
        ),
    }


def _run_obs_demo() -> dict:
    """A small instrumented workload touching every hot subsystem.

    Exercises the thermal solvers, the batched engine and its caches,
    the shared TSP tables, a sweep stage, the online runtime with its
    policy decisions, the estimator and DTM enforcement — on a reduced
    4x4 chip so the whole demo finishes in about a second — and returns
    the resulting registry snapshot.
    """
    import numpy as np

    from repro.apps.parsec import PARSEC
    from repro.apps.workload import ApplicationInstance, Workload
    from repro.chip import Chip
    from repro.core.estimator import map_workload
    from repro.core.constraints import PowerBudgetConstraint
    from repro.core.tsp import ThermalSafePower
    from repro.dtm.enforcement import enforce
    from repro.perf.sweep import SweepRunner
    from repro.runtime import (
        OnlineSimulator,
        TspAdaptivePolicy,
        deterministic_job_stream,
    )
    from repro.tech.library import node_by_name
    from repro.thermal.transient import TransientSimulator

    obs.enable()
    obs.reset()
    chip = Chip.grid_chip(node_by_name("16nm"), 4, 4)
    with experiment_span("obs-demo"):
        # TSP tables + batched-engine solves through a sweep stage.
        tsp = ThermalSafePower(chip)
        runner = SweepRunner()
        runner.map([2, 4, 8, 12], tsp.worst_case, stage="tsp_counts")
        tsp.table()

        # The online event loop: admissions, policy decisions, the
        # engine's quantized peak-temperature cache.
        apps = [PARSEC["x264"], PARSEC["swaptions"]]
        jobs = deterministic_job_stream(
            apps, n_jobs=6, mean_interarrival=0.5, work=20e9, seed=7
        )
        OnlineSimulator(chip, TspAdaptivePolicy(tsp, threads=2)).run(jobs)

        # Estimation + DTM enforcement on an optimistic-TDP mapping.
        workload = Workload(
            [
                ApplicationInstance(
                    PARSEC["x264"], threads=2, frequency=chip.node.f_max
                )
            ]
            * 6
        )
        mapped = map_workload(
            chip,
            workload,
            PowerBudgetConstraint(400.0),
            stop_at_first_rejection=False,
        )
        enforce(mapped)

        # A short closed-loop transient.
        sim = TransientSimulator(chip.thermal, dt=1e-3)
        idle = np.full(chip.n_cores, 2.0)
        sim.simulate(lambda t, temps: idle, duration=0.02)
    return obs.snapshot()


def _emit_profile(args) -> None:
    """Print the registry snapshot; optionally write it to a file."""
    snap = obs.snapshot()
    print("=== observability ===")
    print(obs.to_json(snap))
    if args.profile_out:
        from pathlib import Path

        target = Path(args.profile_out)
        if target.suffix == ".csv":
            obs.to_csv(snap, target)
        else:
            obs.to_json(snap, target)
        print(f"[observability snapshot written to {target}]")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="darksilicon",
        description="Regenerate figures of 'New Trends in Dark Silicon' (DAC 2015).",
    )
    parser.add_argument(
        "experiment",
        help="experiment name (fig1..fig14), 'all', 'list', or 'obs'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorten the transient simulations (figures 11-13)",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also export each experiment's rows to DIR/<name>.csv",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="enable the observability registry and print its JSON "
        "snapshot after the tables",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        help="write the observability snapshot to PATH (.csv for CSV, "
        "anything else for JSON); implies --profile",
    )
    args = parser.parse_args(argv)
    if args.profile_out:
        args.profile = True

    if args.experiment == "obs":
        snap = _run_obs_demo()
        print(obs.to_json(snap))
        if args.profile_out:
            from pathlib import Path

            target = Path(args.profile_out)
            if target.suffix == ".csv":
                obs.to_csv(snap, target)
            else:
                obs.to_json(snap, target)
        return 0

    runners = _runners(args.quick)
    if args.experiment == "list":
        for name in runners:
            print(name)
        print("obs")
        return 0

    if args.experiment == "all":
        names = list(runners)
    elif args.experiment in runners:
        names = [args.experiment]
    else:
        print(
            f"unknown experiment {args.experiment!r}; try 'list'",
            file=sys.stderr,
        )
        return 2

    if args.profile:
        obs.enable()

    csv_dir = None
    if args.csv:
        from pathlib import Path

        csv_dir = Path(args.csv)
        csv_dir.mkdir(parents=True, exist_ok=True)

    for name in names:
        started = time.time()
        with experiment_span(name):
            result = runners[name]()
        elapsed = time.time() - started
        print(f"=== {name} ({elapsed:.1f} s) ===")
        print(result.table())
        if csv_dir is not None:
            from repro.io import result_to_csv

            target = result_to_csv(result, csv_dir / f"{name}.csv")
            print(f"[rows exported to {target}]")
        print()

    if args.profile:
        _emit_profile(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
