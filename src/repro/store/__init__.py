"""repro.store — content-addressed artifact store for experiment results.

Experiments are pure functions of their registered parameters: the same
``(experiment, canonical-params)`` cell always produces the same result
for a given version of the code.  This package memoizes those cells on
disk so a figure is computed once and re-served forever after —
"recompute nothing you can store", applied to the reproduction's own
evaluation pipeline.

* :class:`~repro.store.artifacts.ArtifactStore` — the on-disk store:
  one JSON envelope per cell, addressed by the SHA-256 of
  ``(experiment, canonical-params)``, carrying the payload schema
  version and a per-experiment code fingerprint.  Writes are atomic
  (temp file + ``os.replace``); stale envelopes (schema or fingerprint
  mismatch) count as invalidations and are treated as misses.
* :mod:`~repro.store.batch` — ``fetch_or_run`` (one cell through the
  store) and :class:`~repro.store.batch.BatchRunner` (a set of cells
  across worker processes via :class:`repro.perf.SweepRunner`, serving
  warm cells without spawning workers).

Hit/miss/invalidation/write counters land in the global
:mod:`repro.obs` registry under ``store.*`` and on each store instance
(:attr:`ArtifactStore.counters`) for programmatic assertions.
"""

from repro.store.artifacts import ArtifactStore
from repro.store.batch import BatchCell, BatchOutcome, BatchRunner, fetch_or_run

__all__ = [
    "ArtifactStore",
    "BatchCell",
    "BatchOutcome",
    "BatchRunner",
    "fetch_or_run",
]
