"""Store-backed execution: one cell or a concurrent batch of cells.

:func:`fetch_or_run` is the single-cell primitive — serve from the
artifact store when warm, execute and persist when cold.  The CLI's
``run`` command, ``summary``'s sibling lookups and the batch runner all
go through it, so every layer shares one cache-key discipline.

:class:`BatchRunner` executes a set of ``(experiment, params)`` cells.
Warm cells are served straight from the store in the parent process —
no worker is spawned for them.  Cold cells fan out through
:class:`repro.perf.SweepRunner`, which merges each worker's
observability delta back into the parent registry, exactly as the
experiment sweeps do.  Workers exchange only picklable data: cells
travel as ``(name, canonical-params-json)`` and results come back as
encoded payloads, which the parent persists and decodes.

Store-aware experiments (``summary``) run in a second wave, after every
ordinary cell's artifact has been written, so their sibling lookups hit
the store even on a cold batch.

Every store-routed run — served or executed, single or batched — also
appends a :class:`repro.obs.manifest.RunManifest` line to the store's
``runs.jsonl`` ledger, so the provenance trail (which run produced which
artifact, at what cost, under which code fingerprint) accumulates next
to the artifacts themselves.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.experiments.registry import ExperimentSpec
from repro.io import decode_value
from repro.obs.manifest import append_manifest, build_manifest
from repro.perf.sweep import SweepRunner
from repro.store.artifacts import ArtifactStore


def fetch_or_run(
    spec: ExperimentSpec,
    params: Mapping[str, Any],
    store: Optional[ArtifactStore] = None,
    force: bool = False,
    trace_path: Optional[str] = None,
) -> tuple[Any, bool]:
    """One cell through the store: ``(result, served_from_cache)``.

    When a store is given, a :class:`~repro.obs.manifest.RunManifest`
    line is appended to its ``runs.jsonl`` ledger whether the cell was
    served or executed.

    Args:
        spec: the experiment.
        params: fully resolved parameters (see ``ExperimentSpec.resolve``).
        store: artifact store; ``None`` always executes (and never
            persists or records provenance).
        force: execute even when the store holds the cell, then
            overwrite its artifact.
        trace_path: recorded in the manifest when the caller is writing
            a trace for this run.
    """
    if store is None:
        return spec.run(params), False
    canonical = spec.canonical_params(params)
    fingerprint = spec.fingerprint()
    started = time.perf_counter()
    cached = store.get(spec.name, canonical, fingerprint, force=force)
    if cached is None:
        result, was_cached = spec.run(params, store=store, force=force), False
        store.put(spec.name, canonical, fingerprint, result)
    else:
        result, was_cached = cached, True
    append_manifest(
        store.root,
        build_manifest(
            spec.name,
            canonical,
            fingerprint,
            cached=was_cached,
            wall_s=time.perf_counter() - started,
            trace_path=trace_path,
        ),
    )
    return result, was_cached


@dataclass(frozen=True)
class BatchCell:
    """One unit of batch work: an experiment name plus resolved params."""

    experiment: str
    params: dict


@dataclass
class BatchOutcome:
    """What happened to one cell.

    Attributes:
        cell: the input cell.
        result: the decoded experiment result (``None`` on failure).
        cached: True when served from the store without executing.
        seconds: execution (or load) wall-clock, s.
        error: ``"ExcType: message"`` when the cell failed, else ``None``.
    """

    cell: BatchCell
    result: Any = None
    cached: bool = False
    seconds: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the cell produced a result."""
        return self.error is None


def _execute_cell(
    item: tuple[str, str, Optional[str], bool],
) -> dict:
    """Worker-side cell execution (module-level: picklable).

    Args:
        item: ``(experiment, canonical-params-json, store-root, force)``.
            The store root is only passed for store-aware experiments,
            which read sibling artifacts while running.

    Returns:
        ``{"payload": ..., "seconds": ...}`` on success,
        ``{"error": ..., "seconds": ...}`` on failure — exceptions never
        cross the process boundary, so one failing cell cannot abort the
        pool (the batch reports it per-cell instead).
    """
    import json

    from repro.experiments import registry

    name, params_json, store_root, force = item
    started = time.perf_counter()
    try:
        spec = registry.get(name)
        params = json.loads(params_json)
        store = ArtifactStore(store_root) if store_root is not None else None
        result = spec.run(params, store=store, force=force)
        payload = result.to_payload()
    except Exception as exc:  # noqa: BLE001 - reported per-cell
        return {
            "error": f"{type(exc).__name__}: {exc}",
            "trace": traceback.format_exc(limit=8),
            "seconds": time.perf_counter() - started,
        }
    return {"payload": payload, "seconds": time.perf_counter() - started}


class BatchRunner:
    """Executes batch cells against an artifact store.

    Args:
        store: artifact store; ``None`` runs everything, persists
            nothing.
        sweep: cold-cell executor; pass a parallel
            :class:`~repro.perf.sweep.SweepRunner` to fan cold cells out
            across worker processes.  Warm cells never reach it.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        sweep: Optional[SweepRunner] = None,
    ) -> None:
        self.store = store
        self.sweep = sweep or SweepRunner()

    def run(
        self,
        cells: Sequence[BatchCell],
        force: bool = False,
        trace_path: Optional[str] = None,
    ) -> list[BatchOutcome]:
        """Execute every cell; returns outcomes in input order.

        Cell failures are captured per-outcome (``error`` set), never
        raised — callers decide whether a partial batch is fatal.  With
        a store, one manifest line per cell (including failed ones)
        lands in ``runs.jsonl``; ``trace_path`` is recorded on each
        when the caller is tracing the batch.
        """
        from repro.experiments import registry

        specs = {
            i: registry.get(cell.experiment) for i, cell in enumerate(cells)
        }
        outcomes: dict[int, BatchOutcome] = {}

        # Store-aware experiments (summary) run after every ordinary
        # cell's artifact exists, so their sibling reads hit the store.
        waves = (
            [i for i in range(len(cells)) if not specs[i].store_aware],
            [i for i in range(len(cells)) if specs[i].store_aware],
        )
        for wave_index, wave in enumerate(waves):
            cold: list[int] = []
            for i in wave:
                outcome = self._try_serve(specs[i], cells[i], force)
                if outcome is not None:
                    outcomes[i] = outcome
                else:
                    cold.append(i)
            if not cold:
                continue
            items = []
            for i in cold:
                spec = specs[i]
                store_root = (
                    str(self.store.root)
                    if self.store is not None and spec.store_aware
                    else None
                )
                items.append(
                    (
                        spec.name,
                        spec.canonical_params(cells[i].params),
                        store_root,
                        force,
                    )
                )
            stage = "batch" if wave_index == 0 else "batch.store_aware"
            raw = self.sweep.map(items, _execute_cell, stage=stage)
            for i, out in zip(cold, raw):
                outcomes[i] = self._finish_cold(specs[i], cells[i], out)
        ordered = [outcomes[i] for i in range(len(cells))]
        if self.store is not None:
            for i, outcome in enumerate(ordered):
                append_manifest(
                    self.store.root,
                    build_manifest(
                        outcome.cell.experiment,
                        specs[i].canonical_params(outcome.cell.params),
                        specs[i].fingerprint(),
                        cached=outcome.cached,
                        wall_s=outcome.seconds,
                        trace_path=trace_path,
                        error=outcome.error,
                    ),
                )
        return ordered

    def _try_serve(
        self, spec: ExperimentSpec, cell: BatchCell, force: bool
    ) -> Optional[BatchOutcome]:
        """Serve one cell from the store, or ``None`` when cold."""
        if self.store is None:
            return None
        started = time.perf_counter()
        canonical = spec.canonical_params(cell.params)
        payload = self.store.get_payload(
            spec.name, canonical, spec.fingerprint(), force=force
        )
        if payload is None:
            return None
        return BatchOutcome(
            cell=cell,
            result=decode_value(payload),
            cached=True,
            seconds=time.perf_counter() - started,
        )

    def _finish_cold(
        self, spec: ExperimentSpec, cell: BatchCell, out: dict
    ) -> BatchOutcome:
        """Persist and decode one executed cell's worker output."""
        if "error" in out:
            return BatchOutcome(
                cell=cell,
                seconds=out["seconds"],
                error=out["error"],
            )
        payload = out["payload"]
        if self.store is not None:
            self.store.put_payload(
                spec.name,
                spec.canonical_params(cell.params),
                spec.fingerprint(),
                payload,
            )
        return BatchOutcome(
            cell=cell,
            result=decode_value(payload),
            cached=False,
            seconds=out["seconds"],
        )
