"""The on-disk content-addressed artifact store.

Layout (one directory per experiment, one envelope per cell)::

    <root>/
      fig10/
        3f/3f9c2a....json      # sha256(experiment + canonical params)
      summary/
        ...

Envelope schema (JSON)::

    {
      "schema_version": 1,          # payload-encoding version
      "experiment": "fig10",
      "params": "{...canonical json...}",
      "fingerprint": "a3947f827703ebbf",
      "payload": {...}              # repro.io encoded result
    }

The address hashes only ``(experiment, canonical-params)`` — the two
coordinates a caller can name.  The code fingerprint is *verified on
read* instead of being part of the address: when the experiment's code
changes, the next ``get`` observes the mismatch, counts an
**invalidation**, drops the stale envelope and reports a miss, so the
cell is recomputed and overwritten in place (no orphaned entries
accumulate under dead fingerprints).

Writes go through a temp file in the target directory followed by
``os.replace``, so readers never observe a torn envelope and concurrent
writers of the same cell settle on one complete artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Optional

from repro import obs
from repro.errors import ConfigurationError
from repro.io import PAYLOAD_SCHEMA_VERSION, decode_value

#: Counter names mirrored into :mod:`repro.obs` (prefix ``store.``).
COUNTER_NAMES = ("hits", "misses", "invalidations", "writes", "bypasses")


class ArtifactStore:
    """Content-addressed experiment-result store rooted at a directory.

    Args:
        root: store directory; created lazily on first write.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        #: Per-instance counts of hits/misses/invalidations/writes/bypasses
        #: (the same events are mirrored to ``obs.store.*`` globally).
        self.counters: dict[str, int] = {name: 0 for name in COUNTER_NAMES}

    def _count(self, name: str) -> None:
        self.counters[name] += 1
        obs.incr(f"store.{name}")

    @staticmethod
    def address(experiment: str, canonical_params: str) -> str:
        """SHA-256 hex address of one ``(experiment, params)`` cell."""
        digest = hashlib.sha256(
            f"{experiment}\n{canonical_params}".encode()
        )
        return digest.hexdigest()

    def path_for(self, experiment: str, canonical_params: str) -> Path:
        """On-disk path of the cell's envelope (existing or not)."""
        address = self.address(experiment, canonical_params)
        return self.root / experiment / address[:2] / f"{address}.json"

    def get_payload(
        self,
        experiment: str,
        canonical_params: str,
        fingerprint: str,
        force: bool = False,
    ) -> Optional[dict]:
        """The cell's stored payload, or ``None`` on miss.

        A schema-version or fingerprint mismatch counts as an
        invalidation (the stale envelope is removed) and reports a miss;
        ``force`` bypasses the store entirely.  Lookup latency lands in
        the ``store.hit_latency_s`` / ``store.miss_latency_s``
        histograms, so a profiled run shows what serving from disk
        actually costs next to the hit/miss counts.
        """
        if force:
            self._count("bypasses")
            return None
        started = time.perf_counter()
        path = self.path_for(experiment, canonical_params)
        try:
            with path.open() as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            self._count("misses")
            obs.histogram(
                "store.miss_latency_s", time.perf_counter() - started
            )
            return None
        except (OSError, json.JSONDecodeError):
            # Unreadable/torn envelope: drop and recompute.
            self._invalidate(path)
            return None
        if (
            envelope.get("schema_version") != PAYLOAD_SCHEMA_VERSION
            or envelope.get("fingerprint") != fingerprint
            or envelope.get("experiment") != experiment
            or envelope.get("params") != canonical_params
        ):
            self._invalidate(path)
            return None
        self._count("hits")
        obs.histogram("store.hit_latency_s", time.perf_counter() - started)
        return envelope["payload"]

    def _invalidate(self, path: Path) -> None:
        self._count("invalidations")
        self._count("misses")
        try:
            path.unlink()
        except OSError:  # pragma: no cover - already gone / read-only
            pass

    def get(
        self,
        experiment: str,
        canonical_params: str,
        fingerprint: str,
        force: bool = False,
    ) -> Optional[Any]:
        """The cell's decoded result, or ``None`` on miss."""
        payload = self.get_payload(
            experiment, canonical_params, fingerprint, force=force
        )
        if payload is None:
            return None
        return decode_value(payload)

    def put_payload(
        self,
        experiment: str,
        canonical_params: str,
        fingerprint: str,
        payload: dict,
    ) -> Path:
        """Atomically write one cell's envelope; returns its path."""
        path = self.path_for(experiment, canonical_params)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "schema_version": PAYLOAD_SCHEMA_VERSION,
            "experiment": experiment,
            "params": canonical_params,
            "fingerprint": fingerprint,
            "payload": payload,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle)
                handle.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._count("writes")
        return path

    def put(
        self,
        experiment: str,
        canonical_params: str,
        fingerprint: str,
        result: Any,
    ) -> Path:
        """Encode and atomically write one cell's result."""
        if not hasattr(result, "to_payload"):
            raise ConfigurationError(
                f"result of {experiment!r} is not payload-serialisable "
                f"({type(result).__name__} has no to_payload())"
            )
        return self.put_payload(
            experiment, canonical_params, fingerprint, result.to_payload()
        )

    def entries(self) -> list[Path]:
        """Every envelope currently in the store, sorted by path."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*/*.json"))
