"""Admission policies for the online runtime.

A policy answers one question whenever cores free up or a job arrives:
*may the queue's head job start now, on these cores, at which v/f?*
The simulator first asks :meth:`AdmissionPolicy.threads_for`, places that
many cores with its placer, and then calls :meth:`AdmissionPolicy.admit`
with the *actual* tentative placement — so thermal verification sees
exactly the chip state that would result, not a proxy.

Two policies mirror the paper's central comparison:

* :class:`TdpFifoPolicy` — the state-of-practice baseline: a fixed
  thread count at the maximum nominal frequency, admitted whenever the
  chip-level TDP still has room (TDPmap's online sibling).
* :class:`TspAdaptivePolicy` — thermally verified admission: the DVFS
  ladder is walked down from the nominal maximum and the first level
  whose steady state (with the job on its actual cores) stays below
  T_DTM is granted.  The chip's worst-case TSP table prunes the search:
  levels whose per-core power exceeds ``TSP(1)`` can never be safe
  alone, and the table's safe frequency is where the search converges
  under saturation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.chip import Chip
from repro.core.tsp import ThermalSafePower
from repro.errors import ConfigurationError, InfeasibleError
from repro.runtime.jobs import Job


@dataclass(frozen=True)
class AdmissionDecision:
    """A policy's grant for one job.

    Attributes:
        threads: thread count to run with.
        frequency: operating frequency, Hz.
    """

    threads: int
    frequency: float


class AdmissionPolicy(abc.ABC):
    """Decides whether/how the head-of-queue job may start."""

    def __init__(self, threads: int = 8) -> None:
        if threads < 1:
            raise ConfigurationError(f"threads must be positive, got {threads}")
        self._threads = threads
        # Eq. (1) power is a pure function of (app, node, threads, f) at
        # the fixed T_DTM evaluation point; the event loop re-evaluates
        # the same few job shapes thousands of times.
        self._power_cache: dict[tuple, float] = {}

    def threads_for(self, job: Job) -> int:
        """Thread count this policy would grant ``job``."""
        return min(self._threads, job.max_threads)

    def _core_power(self, job: Job, chip: Chip, threads: int, f: float) -> float:
        """Memoised ``job.app.core_power`` at the chip's T_DTM."""
        key = (job.app, chip.node.name, threads, f)
        power = self._power_cache.get(key)
        if power is None:
            power = job.app.core_power(
                chip.node, threads, f, temperature=chip.t_dtm
            )
            self._power_cache[key] = power
        return power

    @abc.abstractmethod
    def admit(
        self,
        chip: Chip,
        job: Job,
        core_powers: np.ndarray,
        cores: Sequence[int],
    ) -> Optional[AdmissionDecision]:
        """Grant a configuration for ``job`` on ``cores`` or defer.

        Args:
            chip: the chip.
            job: the candidate job.
            core_powers: current per-core power draw, W.
            cores: the tentative placement (length
                ``threads_for(job)``), currently unoccupied.
        """


class TdpFifoPolicy(AdmissionPolicy):
    """Fixed-shape admission under a chip-level TDP.

    Args:
        tdp: the power budget, W.
        threads: threads per job (the paper's baseline uses 8).
        frequency: operating frequency, Hz; defaults to the node's
            nominal maximum at admission time.
    """

    def __init__(
        self, tdp: float, threads: int = 8, frequency: Optional[float] = None
    ) -> None:
        super().__init__(threads)
        if tdp <= 0:
            raise ConfigurationError(f"tdp must be positive, got {tdp}")
        self._tdp = tdp
        self._frequency = frequency

    def admit(
        self,
        chip: Chip,
        job: Job,
        core_powers: np.ndarray,
        cores: Sequence[int],
    ) -> Optional[AdmissionDecision]:
        threads = len(cores)
        frequency = self._frequency if self._frequency else chip.node.f_max
        per_core = self._core_power(job, chip, threads, frequency)
        if float(core_powers.sum()) + threads * per_core > self._tdp + 1e-9:
            return None
        return AdmissionDecision(threads=threads, frequency=frequency)


class TspAdaptivePolicy(AdmissionPolicy):
    """Thermally verified admission, TSP-informed.

    Args:
        tsp: the chip's TSP calculator (its table bounds the ladder
            search from below: descending past the TSP-safe frequency is
            pointless, because that level is safe for *any* placement
            when every running core also respects it — the verification
            still runs, since earlier admissions may exceed it).
        threads: threads per job.
        safety_margin: kelvin kept below T_DTM during verification.
    """

    def __init__(
        self,
        tsp: ThermalSafePower,
        threads: int = 8,
        safety_margin: float = 0.0,
    ) -> None:
        super().__init__(threads)
        if safety_margin < 0:
            raise ConfigurationError(
                f"safety_margin must be non-negative, got {safety_margin}"
            )
        self._tsp = tsp
        self._margin = safety_margin

    def admit(
        self,
        chip: Chip,
        job: Job,
        core_powers: np.ndarray,
        cores: Sequence[int],
    ) -> Optional[AdmissionDecision]:
        threads = len(cores)
        limit = chip.t_dtm - self._margin
        idx = list(cores)

        # Descend from the nominal maximum, but never below the TSP-safe
        # frequency for the resulting active-core count: admitting a job
        # at a crawl blocks its cores for ages and collapses throughput —
        # deferring until cores free up dominates.  (The TSP frequency is
        # what saturation converges to, so the floor costs nothing in the
        # steady state.)
        active_after = int(np.count_nonzero(core_powers)) + threads
        try:
            floor = self._tsp.safe_frequency(job.app, active_after, threads=threads)
        except InfeasibleError:
            floor = chip.node.f_min

        # The ladder is ascending, so the descending candidate walk of
        # the direct path ("stop below the floor") is the suffix >= floor,
        # highest first; all tentative states are verified in one batched
        # engine evaluation instead of one LU solve per level.
        candidates = [f for f in reversed(chip.node.frequency_ladder()) if f >= floor]
        if not candidates:
            return None
        tentative = np.tile(core_powers, (len(candidates), 1))
        for row, f in enumerate(candidates):
            tentative[row, idx] += self._core_power(job, chip, threads, f)
        peaks = chip.engine.peak_temperatures(tentative)
        for f, peak in zip(candidates, peaks):
            if peak <= limit + 1e-9:
                return AdmissionDecision(threads=threads, frequency=f)
        return None
