"""Online runtime resource management on a dark-silicon chip.

The paper closes by arguing that "efficient design and management of
manycore systems in the dark silicon era require ... accurate estimation
of dark silicon [and] thermal-aware dark silicon management".  This
package provides the runtime side of that claim: an event-driven
simulator in which application jobs arrive over time and an admission
policy decides when each runs, with how many threads, and at which v/f —
under either a TDP or the thermal constraint.

* :mod:`repro.runtime.jobs` — jobs, completion records, deterministic
  job-stream generation;
* :mod:`repro.runtime.policies` — admission policies: the TDP-FIFO
  baseline and a TSP-guided thermally safe policy;
* :mod:`repro.runtime.simulator` — the event loop and its metrics
  (makespan, response times, energy, thermal safety).
"""

from repro.runtime.jobs import Job, JobRecord, deterministic_job_stream
from repro.runtime.policies import (
    AdmissionDecision,
    AdmissionPolicy,
    TdpFifoPolicy,
    TspAdaptivePolicy,
)
from repro.runtime.simulator import OnlineSimulator, RuntimeResult
from repro.runtime.traces import jobs_from_csv, jobs_to_csv

__all__ = [
    "Job",
    "JobRecord",
    "deterministic_job_stream",
    "AdmissionDecision",
    "AdmissionPolicy",
    "TdpFifoPolicy",
    "TspAdaptivePolicy",
    "OnlineSimulator",
    "RuntimeResult",
    "jobs_to_csv",
    "jobs_from_csv",
]
