"""The online event loop: arrivals, admissions, completions, metrics.

A quasi-static thermal treatment is used: between scheduling events the
chip state is constant, so its steady-state solution bounds the interval
(the package settles within seconds, job durations are tens of seconds).
Energy is integrated per interval from the same quasi-static powers.

Queueing is FIFO with head-of-line blocking: the simulator admits from
the queue front for as long as the policy grants configurations, which
keeps policy comparisons fair (no policy may cherry-pick easy jobs).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.chip import Chip
from repro.errors import ConfigurationError
from repro.mapping.base import Placer
from repro.mapping.patterns import NeighbourhoodSpreadPlacer
from repro.runtime.jobs import Job, JobRecord
from repro.runtime.policies import AdmissionPolicy
from repro.units import gips as to_gips


@dataclass(frozen=True)
class RuntimeResult:
    """Aggregate outcome of one simulated run.

    Attributes:
        records: completion records, in completion order.
        makespan: last completion time, s.
        energy: integral of chip power, J.
        max_peak_temperature: highest quasi-static peak seen, degC.
        core_seconds: busy core-seconds (utilisation numerator).
        n_cores: chip core count.
    """

    records: tuple[JobRecord, ...]
    makespan: float
    energy: float
    max_peak_temperature: float
    core_seconds: float
    n_cores: int

    @property
    def mean_response_time(self) -> float:
        """Average arrival-to-completion latency, s (0.0 with no jobs)."""
        if not self.records:
            return 0.0
        return float(np.mean([r.response_time for r in self.records]))

    @property
    def mean_waiting_time(self) -> float:
        """Average queueing delay, s (0.0 with no jobs)."""
        if not self.records:
            return 0.0
        return float(np.mean([r.waiting_time for r in self.records]))

    @property
    def throughput_gips(self) -> float:
        """Completed work over makespan, GIPS."""
        total_work = sum(r.job.work for r in self.records)
        return to_gips(total_work / self.makespan) if self.makespan > 0 else 0.0

    @property
    def utilisation(self) -> float:
        """Busy core-seconds over total core-seconds."""
        if self.makespan <= 0:
            return 0.0
        return self.core_seconds / (self.n_cores * self.makespan)


class OnlineSimulator:
    """Event-driven execution of a job stream under an admission policy.

    Args:
        chip: the target chip.
        policy: the admission policy.
        placer: spatial placement of admitted jobs (spread by default —
            the thermally sensible choice for any policy).
    """

    def __init__(
        self,
        chip: Chip,
        policy: AdmissionPolicy,
        placer: Optional[Placer] = None,
    ) -> None:
        self._chip = chip
        self._policy = policy
        self._placer = placer or NeighbourhoodSpreadPlacer()

    def run(self, jobs: Sequence[Job]) -> RuntimeResult:
        """Simulate the whole stream to completion.

        Raises:
            ConfigurationError: if the stream is empty, or if some job
                can never be admitted even on an idle chip (the stream
                would hang).
        """
        if not jobs:
            raise ConfigurationError(
                "job stream is empty; nothing to simulate"
            )
        chip = self._chip
        engine = chip.engine
        jobs = sorted(jobs, key=lambda j: (j.arrival, j.job_id))
        arrivals = list(jobs)
        queue: list[Job] = []
        # (finish_time, job_id, record, cores) heap of running jobs.
        running: list[tuple[float, int, JobRecord]] = []
        occupied: set[int] = set()
        core_powers = np.zeros(chip.n_cores)

        records: list[JobRecord] = []
        now = 0.0
        energy = 0.0
        core_seconds = 0.0
        max_peak = chip.ambient

        def advance(to_time: float) -> None:
            nonlocal now, energy, core_seconds, max_peak
            dt = to_time - now
            if dt > 0:
                energy += float(core_powers.sum()) * dt
                core_seconds += len(occupied) * dt
                if occupied:
                    # The engine's quantized LRU makes the repeated
                    # configurations of a steady event loop cache hits.
                    max_peak = max(
                        max_peak, engine.peak_temperature(core_powers)
                    )
            now = to_time

        def try_admissions() -> None:
            """Admit from the queue front while the policy grants."""
            while queue:
                job = queue[0]
                threads = self._policy.threads_for(job)
                cores = self._placer.place(chip, threads, occupied)
                if cores is None:
                    obs.incr("runtime.placement_deferrals")
                    return
                decision = self._policy.admit(chip, job, core_powers, cores)
                if decision is None:
                    obs.incr("runtime.policy_deferrals")
                    return
                obs.incr("runtime.admissions")
                if decision.threads != len(cores):
                    # Power and duration are computed from the decision
                    # while cores were placed for threads_for(job); a
                    # mismatch would charge per-core power to the wrong
                    # number of cores.
                    raise ConfigurationError(
                        f"policy granted {decision.threads} threads for job "
                        f"{job.job_id} but {len(cores)} cores were placed; "
                        f"threads_for() and admit() must agree"
                    )
                per_core = job.app.core_power(
                    chip.node,
                    decision.threads,
                    decision.frequency,
                    temperature=chip.t_dtm,
                )
                queue.pop(0)
                occupied.update(cores)
                core_powers[list(cores)] += per_core
                finish = now + job.duration(decision.threads, decision.frequency)
                record = JobRecord(
                    job=job,
                    start=now,
                    finish=finish,
                    threads=decision.threads,
                    frequency=decision.frequency,
                    cores=tuple(cores),
                )
                heapq.heappush(running, (finish, job.job_id, record))

        with obs.span("runtime.run", attrs={"jobs": len(jobs)}):
            while arrivals or queue or running:
                next_arrival = arrivals[0].arrival if arrivals else np.inf
                next_finish = running[0][0] if running else np.inf
                if next_arrival == np.inf and next_finish == np.inf:
                    # Idle chip, jobs queued, nothing admitted: the policy
                    # can never place the head job.
                    raise ConfigurationError(
                        f"job {queue[0].job_id} ({queue[0].app.name}) is "
                        f"never admissible; the stream cannot finish"
                    )
                if next_arrival <= next_finish:
                    advance(next_arrival)
                    queue.append(arrivals.pop(0))
                else:
                    advance(next_finish)
                    _, _, record = heapq.heappop(running)
                    records.append(record)
                    obs.incr("runtime.completions")
                    core_powers[list(record.cores)] = 0.0
                    occupied.difference_update(record.cores)
                try_admissions()

        obs.incr("runtime.simulations")
        # Simulated (not wall) seconds; the timer aggregate gives the
        # mean makespan over runs as total_s / count.
        obs.observe("runtime.simulated_s", now)
        return RuntimeResult(
            records=tuple(records),
            makespan=now,
            energy=energy,
            max_peak_temperature=max_peak,
            core_seconds=core_seconds,
            n_cores=chip.n_cores,
        )
