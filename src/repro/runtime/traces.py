"""Job-trace persistence: save and reload runtime job streams.

A trace is a CSV with one job per row (`job_id, app, arrival, work,
max_threads`), so experiments can pin down the exact stream they ran and
external tools can author streams for the simulator.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.apps.parsec import app_by_name
from repro.errors import ConfigurationError
from repro.runtime.jobs import Job

_HEADER = ("job_id", "app", "arrival", "work", "max_threads")


def jobs_to_csv(jobs: Sequence[Job], path: str | Path) -> Path:
    """Write a job stream to CSV.

    Returns:
        The written path.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for job in jobs:
            writer.writerow(
                (job.job_id, job.app.name, job.arrival, job.work, job.max_threads)
            )
    return path


def jobs_from_csv(path: str | Path) -> list[Job]:
    """Read a job stream written by :func:`jobs_to_csv`.

    Application names are resolved against the PARSEC catalogue.

    Raises:
        ConfigurationError: on a malformed header or row.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = tuple(next(reader))
        except StopIteration:
            raise ConfigurationError(f"{path} is empty") from None
        if header != _HEADER:
            raise ConfigurationError(
                f"unexpected trace header {header!r}; expected {_HEADER!r}"
            )
        jobs: list[Job] = []
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(_HEADER):
                raise ConfigurationError(
                    f"{path}:{line_no}: expected {len(_HEADER)} fields, "
                    f"got {len(row)}"
                )
            job_id, app_name, arrival, work, max_threads = row
            jobs.append(
                Job(
                    job_id=int(job_id),
                    app=app_by_name(app_name),
                    arrival=float(arrival),
                    work=float(work),
                    max_threads=int(max_threads),
                )
            )
    return jobs
