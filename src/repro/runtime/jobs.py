"""Jobs and job streams for the online runtime simulator.

A job is a fixed amount of work (instructions) of one application,
arriving at a known time.  How fast it completes depends on the
configuration the admission policy grants it: ``threads`` cores at
frequency ``f`` retire ``S(threads) * IPC * f`` instructions per second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.apps.profile import AppProfile
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Job:
    """One application run request.

    Attributes:
        job_id: unique identifier (assigned by the stream generator).
        app: the application profile.
        arrival: arrival time, s.
        work: instructions to execute (e.g. 100e9 for a ~10 s job at
            10 GIPS).
        max_threads: cap on the threads the policy may grant.
    """

    job_id: int
    app: AppProfile
    arrival: float
    work: float
    max_threads: int = 8

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ConfigurationError(f"arrival must be non-negative, got {self.arrival}")
        if self.work <= 0:
            raise ConfigurationError(f"work must be positive, got {self.work}")
        if not 1 <= self.max_threads <= self.app.max_threads:
            raise ConfigurationError(
                f"max_threads must be in [1, {self.app.max_threads}], "
                f"got {self.max_threads}"
            )

    def duration(self, threads: int, frequency: float) -> float:
        """Execution time at the given configuration, s."""
        rate = self.app.instance_performance(threads, frequency)
        if rate <= 0:
            raise ConfigurationError("configuration yields zero throughput")
        return self.work / rate


@dataclass(frozen=True)
class JobRecord:
    """Completion record of one job.

    Attributes:
        job: the job.
        start: execution start time, s.
        finish: completion time, s.
        threads: granted thread count.
        frequency: granted frequency, Hz.
        cores: core indices it ran on.
    """

    job: Job
    start: float
    finish: float
    threads: int
    frequency: float
    cores: tuple[int, ...]

    @property
    def waiting_time(self) -> float:
        """Queueing delay before execution, s."""
        return self.start - self.job.arrival

    @property
    def response_time(self) -> float:
        """Arrival-to-completion latency, s."""
        return self.finish - self.job.arrival


def deterministic_job_stream(
    apps: Sequence[AppProfile],
    n_jobs: int,
    mean_interarrival: float,
    work: float,
    seed: int = 1,
) -> list[Job]:
    """A reproducible Poisson-like job stream.

    Inter-arrival times are exponential, applications drawn uniformly —
    both from a seeded generator, so every run of an experiment sees the
    identical stream.

    Args:
        apps: the application pool.
        n_jobs: number of jobs.
        mean_interarrival: mean gap between arrivals, s.
        work: instructions per job.
        seed: RNG seed.
    """
    if not apps:
        raise ConfigurationError("need at least one application")
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be positive, got {n_jobs}")
    if mean_interarrival <= 0:
        raise ConfigurationError(
            f"mean_interarrival must be positive, got {mean_interarrival}"
        )
    rng = np.random.default_rng(seed)
    t = 0.0
    jobs: list[Job] = []
    for i in range(n_jobs):
        t += float(rng.exponential(mean_interarrival))
        app = apps[int(rng.integers(len(apps)))]
        jobs.append(Job(job_id=i, app=app, arrival=t, work=work))
    return jobs
