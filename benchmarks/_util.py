"""Shared helpers for the benchmark modules.

Besides the table ``emit`` banner, this module owns the observability
hook of the bench suite: when the :mod:`repro.obs` registry is recording
(``REPRO_OBS=1``, as ``make bench-track`` sets, or an explicit
``obs.enable()``), :func:`attach_obs` stores the registry snapshot in a
bench result's ``extra_info`` so the ``BENCH_*.json`` trajectory records
solver calls, cache hit rates and sweep stages next to the wall-clock
numbers — not just "how long", but "doing what".
"""

from repro import obs


def emit(title: str, result) -> None:
    """Print an experiment's table under a banner (visible with -s)."""
    print(f"\n=== {title} ===")
    print(result.table())


def attach_obs(benchmark) -> None:
    """Attach the current registry snapshot to a bench result.

    A no-op when the snapshot is empty (registry disabled or nothing
    recorded), so default benchmark runs — the 5 %-overhead guarantee is
    stated for observability *off* — are unchanged.

    Args:
        benchmark: the ``pytest-benchmark`` fixture of the test.
    """
    snapshot = obs.snapshot()
    if any(snapshot[kind] for kind in ("counters", "timers", "spans")):
        benchmark.extra_info["obs"] = snapshot
