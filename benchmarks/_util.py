"""Shared helpers for the benchmark modules."""


def emit(title: str, result) -> None:
    """Print an experiment's table under a banner (visible with -s)."""
    print(f"\n=== {title} ===")
    print(result.table())
