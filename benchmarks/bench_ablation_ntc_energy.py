"""Ablation/extension: the NTC minimum-energy operating point.

Completes the paper's Observation 4 with the classic NTC result the
cited Pinckney et al. work is about: sweep energy-per-instruction over
the voltage axis and locate the minimum.  Scalable applications bottom
out in the near-threshold region far below nominal; canneal's heavy
constant-power share pushes its optimum up the voltage axis.
"""

import pytest

from repro.apps.parsec import PARSEC, PARSEC_ORDER
from repro.ntc.energy_sweep import energy_voltage_sweep, minimum_energy_point
from repro.power.vf_curve import Region, VFCurve
from repro.tech.library import NODE_11NM


def _study():
    return {
        name: minimum_energy_point(PARSEC[name], NODE_11NM)
        for name in PARSEC_ORDER
    }


def test_ntc_minimum_energy_ablation(benchmark):
    optima = benchmark.pedantic(_study, rounds=1, iterations=1)
    curve = VFCurve.for_node(NODE_11NM)

    print("\n=== Ablation: minimum-energy operating point (11 nm, 8 threads) ===")
    print(f"{'app':13s} {'Vopt [V]':>9} {'f [GHz]':>8} {'region':>7} {'E/instr [pJ]':>13}")
    for name, p in optima.items():
        print(
            f"{name:13s} {p.vdd:>9.3f} {p.frequency / 1e9:>8.2f} "
            f"{p.region.value:>7} {p.energy_per_instruction * 1e12:>13.1f}"
        )

    # Every optimum sits well below the nominal rail.
    for name, p in optima.items():
        assert p.vdd < 0.8 * curve.v_nominal, name

    # Scalable kernels bottom out in the NTC region.
    for name in ("x264", "blackscholes", "swaptions", "ferret"):
        assert optima[name].region is Region.NTC, name

    # canneal's optimum voltage exceeds the best scalers' (its P_ind
    # share punishes slow cycles).
    assert optima["canneal"].vdd > optima["swaptions"].vdd

    # The U-curve exists: sweep endpoints are costlier than the optimum.
    sweep = energy_voltage_sweep(PARSEC["x264"], NODE_11NM)
    energies = [p.energy_per_instruction for p in sweep]
    best = optima["x264"].energy_per_instruction
    assert energies[0] > best
    assert energies[-1] > best
