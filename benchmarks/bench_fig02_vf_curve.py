"""Figure 2: the Eq. (2) frequency/voltage design space."""

from benchmarks._util import emit
from repro.experiments import fig02_vf_curve


def test_fig02_vf_curve(benchmark):
    result = benchmark(fig02_vf_curve.run)
    emit("Figure 2: f-V curve (22 nm)", result)

    assert result.k_ghz_v == 3.7
    assert result.vth == 0.178

    samples = result.samples
    # Frequency is zero at Vth and monotone increasing.
    assert samples[0][1] == 0.0
    freqs = [f for _, f, _ in samples]
    assert freqs == sorted(freqs)
    # The curve tops out around 4.3 GHz at 1.5 V (Figure 2's upper-right).
    assert 4.0 <= freqs[-1] <= 4.6
    # All three regions appear, in NTC -> STC -> BOOST order.
    regions = [r for _, _, r in samples]
    assert regions[0] == "ntc"
    assert regions[-1] == "boost"
    assert "stc" in regions
    assert sorted(set(regions), key=regions.index) == ["ntc", "stc", "boost"]
