"""Ablation: spatio-temporal patterning (active-set rotation).

The paper's abstract claims "sophisticated spatio-temporal mapping
decisions result in improved thermal profiles with reduced peak
temperatures".  This benchmark rotates a contiguous hot band across the
16 nm die and measures the peak-temperature reduction as a function of
the rotation period.
"""

import pytest

from repro.apps.parsec import PARSEC
from repro.apps.workload import Workload
from repro.experiments.common import get_chip
from repro.mapping.temporal import evaluate_rotation
from repro.units import GIGA


def _study():
    chip = get_chip("16nm")
    workload = Workload.replicate(PARSEC["x264"], 6, 8, chip.node.f_max)
    outcomes = {}
    for label, period in (("fast (20 ms)", 0.02), ("medium (100 ms)", 0.1), ("slow (1 s)", 1.0)):
        outcomes[label] = evaluate_rotation(
            chip, workload, n_phases=2, period=period,
            cycles=30 if period < 0.5 else 8,
        )
    return outcomes


def test_temporal_rotation_ablation(benchmark):
    outcomes = benchmark.pedantic(_study, rounds=1, iterations=1)

    print("\n=== Ablation: active-set rotation period (2 phases) ===")
    print(f"{'period':16s} {'static peak':>12} {'rotating peak':>14} {'reduction [K]':>14}")
    for label, r in outcomes.items():
        print(
            f"{label:16s} {r.static_peak:>12.2f} {r.rotating_peak:>14.2f} "
            f"{r.reduction:>14.2f}"
        )

    # Rotation reduces the peak at every period.
    for label, r in outcomes.items():
        assert r.reduction > 0.0, label

    # Faster rotation approaches the averaged-power limit: monotone gain.
    assert (
        outcomes["fast (20 ms)"].rotating_peak
        <= outcomes["medium (100 ms)"].rotating_peak + 1e-6
        <= outcomes["slow (1 s)"].rotating_peak + 2e-6
    )

    # The effect size is meaningful (> 0.5 K) for the fast rotation.
    assert outcomes["fast (20 ms)"].reduction > 0.5
