"""Ablation: chip-wide vs per-instance boosting granularity.

The paper models Intel-style chip-wide boosting (one frequency for all
active cores).  Per-instance control is the natural refinement: each
instance reacts to *its own* hottest core, so instances sitting in cool
die regions keep boosting while central ones back off.  Expected shape:
higher total performance at the same electrical cap, with a slightly
larger thermal overshoot (each controller is blind to the heat its
neighbours are still adding).
"""

import pytest

from repro.apps.parsec import PARSEC
from repro.apps.workload import Workload
from repro.boosting.constant import best_constant_frequency
from repro.boosting.controller import BoostingController
from repro.boosting.simulation import (
    place_workload,
    run_boosting,
    run_per_instance_boosting,
)
from repro.experiments.common import get_chip
from repro.mapping.patterns import NeighbourhoodSpreadPlacer
from repro.power.vf_curve import VFCurve


def _study():
    chip = get_chip("16nm")
    workload = Workload.replicate(PARSEC["x264"], 12, 8, chip.node.f_max)
    placed = place_workload(chip, workload, placer=NeighbourhoodSpreadPlacer())
    const = best_constant_frequency(placed)
    curve = VFCurve.for_node(chip.node)

    def controller():
        return BoostingController(
            f_min=chip.node.f_min,
            f_max=curve.f_limit,
            step=chip.node.dvfs_step,
            threshold=chip.t_dtm,
            initial_frequency=const.frequency,
        )

    chip_wide = run_boosting(
        placed, controller(), duration=4.0,
        warm_start_frequency=const.frequency, power_cap=500.0,
    )
    per_instance = run_per_instance_boosting(
        placed,
        [controller() for _ in range(placed.n_instances)],
        duration=4.0,
        warm_start_frequencies=[const.frequency] * placed.n_instances,
        power_cap=500.0,
    )
    return const, chip_wide, per_instance


def test_per_instance_boosting_ablation(benchmark):
    const, chip_wide, per_instance = benchmark.pedantic(
        _study, rounds=1, iterations=1
    )

    print("\n=== Ablation: boosting granularity (12x x264, 16 nm) ===")
    print(f"{'scheme':14s} {'avg GIPS':>9} {'max T [degC]':>13} {'max P [W]':>10}")
    print(f"{'constant':14s} {const.gips:>9.1f} {const.peak_temperature:>13.2f} {const.total_power:>10.1f}")
    for name, r in (("chip-wide", chip_wide), ("per-instance", per_instance)):
        print(f"{name:14s} {r.average_gips:>9.1f} {r.max_temperature:>13.2f} {r.max_power:>10.1f}")

    # Finer granularity extracts more performance under the same cap.
    assert per_instance.average_gips > chip_wide.average_gips
    # Both respect the 500 W electrical constraint.
    assert chip_wide.max_power <= 505.0
    assert per_instance.max_power <= 505.0
    # Per-instance control overshoots the threshold slightly more (each
    # controller is blind to its neighbours' heating), but stays within
    # a small band.
    assert per_instance.max_temperature >= chip_wide.max_temperature - 0.1
    assert per_instance.max_temperature <= 80.0 + 2.5
