"""Figure 3: Eq. (1) fit to x264 power samples at 22 nm."""

from benchmarks._util import emit
from repro.experiments import fig03_power_fit


def test_fig03_power_fit(benchmark):
    result = benchmark(fig03_power_fit.run)
    emit("Figure 3: power-model fit (x264, 22 nm, 1 thread)", result)

    # Paper anchor: ~18 W at 4 GHz for the single-threaded encoder.
    assert 15.0 <= result.power_at_4ghz <= 22.0
    # The fit tracks the noisy samples closely.
    assert result.rms_error < 0.05 * result.power_at_4ghz
    # Recovered coefficients are physical and near the catalogue values.
    assert 1.5 <= result.ceff_nf <= 3.0
    assert result.pind_w >= 0.0
    assert result.i0_a >= 0.0
    # Power grows monotonically with frequency (cubic dynamic term).
    fitted = [row[2] for row in result.rows()]
    assert fitted == sorted(fitted)
