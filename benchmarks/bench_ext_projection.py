"""Extension benchmark: the revised dark-silicon projection.

The paper's motivation: the literature's fixed-power-budget methodology
over-predicted dark silicon (">50 % at 22 nm"); accounting for
temperature and DVFS yields a far less conservative trend.  This
benchmark regenerates the three-methodology projection and asserts its
ordering at every node.
"""

import pytest

from repro.experiments import ext_projection


def test_projection(benchmark):
    result = benchmark.pedantic(ext_projection.run, rounds=1, iterations=1)

    print("\n=== Extension: dark-silicon projection (ferret, TDP 185 W) ===")
    print(result.table())

    for entry in result.entries:
        # Methodology ordering at every node: TDP >= temperature >= DVFS.
        assert entry.dark_tdp >= entry.dark_temp - 1e-9, entry.node
        assert entry.dark_temp >= entry.dark_dvfs - 1e-9, entry.node
        # DVFS turns nearly the whole chip on ("dim, not dark").
        assert entry.dark_dvfs < 0.10, entry.node

    # The fixed-budget methodology claims a large dark share at 16 nm ...
    assert result.node("16nm").dark_tdp > 0.30
    # ... while performance under the physical constraint keeps scaling.
    gips = [e.gips_dvfs for e in result.entries]
    assert gips == sorted(gips)
    assert result.node("8nm").gips_dvfs > 2 * result.node("16nm").gips_dvfs
