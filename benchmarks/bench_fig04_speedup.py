"""Figure 4: speed-up vs parallel threads at 2 GHz."""

from benchmarks._util import emit
from repro.experiments import fig04_speedup


def test_fig04_speedup(benchmark):
    result = benchmark(fig04_speedup.run)
    emit("Figure 4: speed-up factors", result)

    curves = result.curves
    idx64 = result.thread_counts.index(64)
    # Paper values at 64 threads: x264 ~3x, bodytrack ~2.4x, canneal ~1.7x.
    assert abs(curves["x264"][idx64] - 3.0) < 0.3
    assert abs(curves["bodytrack"][idx64] - 2.4) < 0.3
    assert abs(curves["canneal"][idx64] - 1.7) < 0.3
    # Ordering at every plotted thread count >= 16 (the Figure 4 x-range).
    for i, n in enumerate(result.thread_counts):
        if n >= 16:
            assert curves["x264"][i] > curves["bodytrack"][i] > curves["canneal"][i]
    # The parallelism wall: speed-up saturates (64 below the peak).
    assert curves["x264"][idx64] < max(curves["x264"])
