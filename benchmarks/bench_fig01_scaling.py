"""Figure 1 (table): ITRS scaling factors."""

from benchmarks._util import emit
from repro.experiments import fig01_scaling


def test_fig01_scaling_table(benchmark):
    result = benchmark(fig01_scaling.run)
    emit("Figure 1: scaling factors", result)

    rows = {r[0]: r for r in result.rows()}
    # The exact Figure 1 factors.
    assert rows["16nm"][1:5] == (0.89, 1.35, 0.64, 0.53)
    assert rows["11nm"][1:5] == (0.81, 1.75, 0.39, 0.28)
    assert rows["8nm"][1:5] == (0.74, 2.30, 0.24, 0.15)
    # Derived chip parameters.
    assert rows["16nm"][6] == 100
    assert rows["11nm"][6] == 198
    assert rows["8nm"][6] == 361
