"""Ablation: how much does the placement pattern matter?

Sweeps all four placers on the Figure 8 setting (x264 at max v/f under
the temperature constraint, 16 nm) and quantifies the active-core count
each achieves.  The expected ordering: any spreading strategy beats the
contiguous baseline, and the thermal-influence-aware placer is at least
as good as the geometric heuristics.
"""

import pytest

from repro.apps.parsec import PARSEC
from repro.core.constraints import TemperatureConstraint
from repro.core.dark_silicon import estimate_dark_silicon
from repro.experiments.common import get_chip
from repro.mapping.contiguous import ContiguousPlacer
from repro.mapping.patterns import (
    CheckerboardPlacer,
    NeighbourhoodSpreadPlacer,
    ThermalSpreadPlacer,
)

PLACERS = {
    "contiguous": ContiguousPlacer(),
    "checkerboard": CheckerboardPlacer(),
    "neighbourhood": NeighbourhoodSpreadPlacer(),
    "thermal": ThermalSpreadPlacer(),
}


def _sweep():
    chip = get_chip("16nm")
    app = PARSEC["x264"]
    results = {}
    for name, placer in PLACERS.items():
        r = estimate_dark_silicon(
            chip, app, chip.node.f_max, TemperatureConstraint(), placer=placer
        )
        results[name] = r
    return results


def test_placer_ablation(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print("\n=== Ablation: placement pattern (x264, 16 nm, T_DTM) ===")
    print(f"{'placer':14s} {'active':>7} {'power [W]':>10} {'peak [degC]':>12}")
    for name, r in results.items():
        print(
            f"{name:14s} {r.active_cores:>7d} {r.total_power:>10.1f} "
            f"{r.peak_temperature:>12.1f}"
        )

    # Every mapping is thermally safe by construction.
    for name, r in results.items():
        assert r.peak_temperature <= 80.0 + 1e-6, name

    # All spreading strategies beat contiguous packing.
    contiguous = results["contiguous"].active_cores
    for name in ("checkerboard", "neighbourhood", "thermal"):
        assert results[name].active_cores > contiguous, name

    # The influence-matrix placer is at least as good as the geometric
    # heuristics (it optimises the actual objective).
    best_geometric = max(
        results["checkerboard"].active_cores,
        results["neighbourhood"].active_cores,
    )
    assert results["thermal"].active_cores >= best_geometric - 8
