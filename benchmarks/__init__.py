"""Benchmark harness: one module per paper figure/table (Figs 1-14)."""
