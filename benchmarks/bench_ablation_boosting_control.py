"""Ablation: boosting control period and step size.

The paper fixes the Turbo-Boost-style loop at 1 ms / 200 MHz.  This
ablation varies the control period and step and measures the temperature
ripple around the threshold: slower loops and coarser steps overshoot
more, eroding the safety margin the 80 degC threshold is supposed to
guarantee.
"""

import pytest

from repro.apps.parsec import PARSEC
from repro.apps.workload import Workload
from repro.boosting.constant import best_constant_frequency
from repro.boosting.controller import BoostingController
from repro.boosting.simulation import place_workload, run_boosting
from repro.experiments.common import get_chip
from repro.mapping.patterns import NeighbourhoodSpreadPlacer
from repro.power.vf_curve import VFCurve
from repro.units import GIGA


def _study():
    chip = get_chip("16nm")
    workload = Workload.replicate(PARSEC["x264"], 12, 8, chip.node.f_max)
    placed = place_workload(chip, workload, placer=NeighbourhoodSpreadPlacer())
    const = best_constant_frequency(placed)
    curve = VFCurve.for_node(chip.node)

    outcomes = {}
    for label, dt, step in (
        ("1ms/200MHz (paper)", 1e-3, 0.2 * GIGA),
        ("10ms/200MHz", 1e-2, 0.2 * GIGA),
        ("50ms/200MHz", 5e-2, 0.2 * GIGA),
        ("1ms/400MHz", 1e-3, 0.4 * GIGA),
    ):
        controller = BoostingController(
            f_min=chip.node.f_min,
            f_max=curve.f_limit,
            step=step,
            threshold=chip.t_dtm,
            initial_frequency=const.frequency,
        )
        outcomes[label] = run_boosting(
            placed,
            controller,
            duration=5.0,
            dt=dt,
            record_interval=0.5,
            warm_start_frequency=const.frequency,
            power_cap=500.0,
        )
    return outcomes


def test_boosting_control_ablation(benchmark):
    outcomes = benchmark.pedantic(_study, rounds=1, iterations=1)

    print("\n=== Ablation: boosting control period / step ===")
    print(f"{'configuration':20s} {'avg GIPS':>9} {'max T [degC]':>13} {'overshoot [K]':>14}")
    for label, r in outcomes.items():
        print(
            f"{label:20s} {r.average_gips:>9.1f} {r.max_temperature:>13.2f} "
            f"{max(0.0, r.max_temperature - 80.0):>14.2f}"
        )

    paper = outcomes["1ms/200MHz (paper)"]
    slow = outcomes["50ms/200MHz"]
    coarse = outcomes["1ms/400MHz"]

    # The paper's configuration keeps the overshoot small.
    assert paper.max_temperature - 80.0 < 1.0
    # Slower control overshoots more than the paper's loop.
    assert slow.max_temperature >= paper.max_temperature
    # A coarser step also increases the ripple.
    assert coarse.max_temperature >= paper.max_temperature - 0.05
    # All variants still deliver comparable average performance (the
    # control knob trades safety margin, not throughput).
    gips = [r.average_gips for r in outcomes.values()]
    assert max(gips) / min(gips) < 1.15
