"""Figure 12: performance & power vs active cores (x264, 16 nm)."""

from benchmarks._util import emit
from repro.experiments import fig12_boosting_sweep


def test_fig12_boosting_sweep(benchmark):
    result = benchmark.pedantic(
        fig12_boosting_sweep.run,
        kwargs={"boost_duration": 2.0},
        rounds=1,
        iterations=1,
    )
    emit("Figure 12: perf & power vs active cores", result)

    points = result.points
    assert len(points) >= 10  # 8..96 in steps of 8, plus more

    # Performance grows with active cores under both schemes.
    const_gips = [p.constant_gips for p in points]
    assert const_gips == sorted(const_gips)
    assert points[-1].boosting_gips > points[0].boosting_gips

    # Boosting is (weakly) ahead at every point...
    for p in points:
        assert p.boosting_gips >= p.constant_gips * 0.98, p.active_cores

    # ...but with far higher peak power at scale (the paper's right-hand
    # panel: boosting's power curve diverges upward).
    assert points[-1].boosting_peak_power > 1.3 * points[-1].constant_power

    # The constant scheme's power saturates near the thermal capacity;
    # frequencies fall back as cores are added.
    freqs = [p.constant_frequency for p in points]
    assert freqs[-1] < freqs[0]
    assert points[-1].constant_power <= 230.0
