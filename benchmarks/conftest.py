"""Benchmark-suite configuration.

Each ``bench_figNN`` module regenerates one figure/table of the paper via
``pytest-benchmark`` and asserts the headline *shape* the paper reports
(direction of effects, approximate factors).  Absolute numbers are
recorded to stdout so a ``--benchmark-only -s`` run doubles as the
EXPERIMENTS.md data source.
"""
