"""Benchmark-suite configuration.

Each ``bench_figNN`` module regenerates one figure/table of the paper via
``pytest-benchmark`` and asserts the headline *shape* the paper reports
(direction of effects, approximate factors).  Absolute numbers are
recorded to stdout so a ``--benchmark-only -s`` run doubles as the
EXPERIMENTS.md data source.

Observability: with ``REPRO_OBS=1`` in the environment (what
``make bench-track`` sets) the global :mod:`repro.obs` registry records
through every bench, is reset between tests, and each test's snapshot is
attached to its bench result's ``extra_info`` — landing in the
``BENCH_*.json`` trajectory alongside the timings.  Without the variable
the registry stays disabled and the suite runs exactly as before.
"""

import pytest

from benchmarks._util import attach_obs
from repro import obs


@pytest.fixture(autouse=True)
def _obs_per_test(request):
    """Per-test registry isolation + snapshot attachment."""
    if obs.enabled():
        obs.reset()
    yield
    if obs.enabled() and "benchmark" in request.fixturenames:
        attach_obs(request.getfixturevalue("benchmark"))
