"""Figure 11: transient boosting vs constant frequency (12x x264, 16 nm).

The paper simulates 100 s; the benchmark uses a 10 s warm-started window,
which contains dozens of control oscillations and the same steady
behaviour, keeping the harness runtime reasonable.  Run
``darksilicon fig11`` (without --quick) for the full 100 s trace.
"""

import numpy as np

from benchmarks._util import emit
from repro.experiments import fig11_boosting_transient


def test_fig11_boosting_transient(benchmark):
    result = benchmark.pedantic(
        fig11_boosting_transient.run,
        kwargs={"duration": 10.0},
        rounds=1,
        iterations=1,
    )
    emit("Figure 11: boosting vs constant frequency (transient)", result)

    boost, const = result.boosting, result.constant

    # Boosting's average performance is higher, but modestly so
    # (paper: 258.1 vs 245.3 GIPS, ~5 %; we accept up to ~25 %).
    assert boost.average_gips > const.average_gips
    assert boost.average_gips / const.average_gips < 1.25

    # Average GIPS in the paper's few-hundred range.
    assert 180 <= const.average_gips <= 380

    # Boosting oscillates around the 80 degC threshold...
    assert abs(boost.max_temperature - 80.0) <= 1.5
    assert np.ptp(boost.peak_temperatures) < 5.0
    # ... while the constant scheme sits a few degrees below it.
    assert const.max_temperature < 80.0
    assert const.max_temperature > 72.0

    # Observation 3: boosting pays with far higher peak power.
    assert boost.max_power > 1.3 * const.max_power
    # The 500 W electrical constraint is honoured.
    assert boost.max_power <= 505.0
