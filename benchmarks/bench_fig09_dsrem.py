"""Figure 9: DsRem vs TDPmap."""

from benchmarks._util import emit
from repro.experiments import fig09_dsrem


def test_fig09_dsrem(benchmark):
    result = benchmark.pedantic(fig09_dsrem.run, rounds=1, iterations=1)
    emit("Figure 9: TDPmap vs DsRem", result)

    # DsRem beats TDPmap on every workload.
    for entry in result.entries:
        assert entry.speedup > 1.0, entry.workload
        # And never violates the thermal threshold.
        assert entry.dsrem_peak <= 80.0 + 1e-6, entry.workload

    # Paper headline: ~2x average speed-up.
    assert 1.5 <= result.average_speedup <= 3.0

    # DsRem lights up silicon TDPmap leaves dark.
    for entry in result.entries:
        assert entry.dsrem_dark <= entry.tdpmap_dark + 1e-9, entry.workload
