"""Ablation: DTM consequences of the optimistic TDP (Section 3.1's claim).

"[The optimistic TDP] will trigger DTM, which might power down additional
cores, resulting in more dark silicon."  This benchmark quantifies that:
map the hungry applications to the 220 W budget, let each DTM policy
enforce the 80 degC limit, and measure how much dark silicon the naive
TDP estimate hid.
"""

import pytest

from repro.apps.parsec import PARSEC
from repro.core.constraints import PowerBudgetConstraint
from repro.core.dark_silicon import estimate_dark_silicon
from repro.dtm import GateHottest, ThrottleHottest, enforce
from repro.experiments.common import get_chip
from repro.power.budget import PAPER_TDP_OPTIMISTIC


def _study():
    chip = get_chip("16nm")
    rows = []
    for name in ("x264", "ferret", "dedup", "swaptions"):
        admitted = estimate_dark_silicon(
            chip, PARSEC[name], chip.node.f_max,
            PowerBudgetConstraint(PAPER_TDP_OPTIMISTIC),
        )
        gated = enforce(admitted, GateHottest())
        throttled = enforce(admitted, ThrottleHottest())
        rows.append((name, admitted, gated, throttled))
    return rows


def test_dtm_ablation(benchmark):
    rows = benchmark.pedantic(_study, rounds=1, iterations=1)

    print("\n=== Ablation: DTM enforcement of the optimistic TDP (220 W) ===")
    print(
        f"{'app':11s} {'admitted dark':>14} {'gated dark':>11} "
        f"{'throttled GIPS loss':>20}"
    )
    for name, admitted, gated, throttled in rows:
        print(
            f"{name:11s} {admitted.dark_fraction:>13.0%} "
            f"{gated.effective_dark_fraction:>10.0%} "
            f"{throttled.gips_lost:>19.1f}"
        )

    for name, admitted, gated, throttled in rows:
        # The admitted mapping violates T_DTM (that is the premise).
        assert admitted.peak_temperature > 80.0, name
        # Both policies restore safety.
        assert gated.after.peak_temperature <= 80.0 + 1e-6, name
        assert throttled.after.peak_temperature <= 80.0 + 1e-6, name
        # Gating produces MORE dark silicon than the TDP admitted —
        # the paper's underestimation argument.
        assert gated.effective_dark_fraction > admitted.dark_fraction, name
        # Throttling preserves cores but costs performance.
        assert throttled.after.active_cores == admitted.active_cores, name
        assert throttled.gips_lost > 0, name
        # Throttling dominates gating in retained performance here.
        assert throttled.after.gips >= gated.after.gips, name
