"""Figure 13: boosting vs constant per application at 11 nm."""

from benchmarks._util import emit
from repro.experiments import fig13_boosting_apps
from repro.power.vf_curve import Region
from repro.units import GIGA


def test_fig13_boosting_apps(benchmark):
    result = benchmark.pedantic(
        fig13_boosting_apps.run,
        kwargs={"boost_duration": 2.0},
        rounds=1,
        iterations=1,
    )
    emit("Figure 13: boosting vs constant per app (11 nm)", result)

    # Every case: boosting's average performance is at least the
    # constant scheme's, at higher peak power.
    for case in result.cases:
        assert case.boosting_gips >= case.constant_gips * 0.98, (
            case.app,
            case.n_instances,
        )

    # 24-instance cases force lower safe frequencies than 12-instance
    # ones for the same app (more active cores -> less per-core budget).
    by_app = {}
    for case in result.cases:
        by_app.setdefault(case.app, {})[case.n_instances] = case
    for app, cases in by_app.items():
        assert cases[24].constant_frequency <= cases[12].constant_frequency, app

    # The paper's observation: the minimum utilised operating point
    # across all cases stays in the STC region (0.92 V / 3.0 GHz in the
    # paper's calibration), never NTC.
    assert all(c.region is not Region.NTC for c in result.cases)
    assert result.min_frequency >= 1.6 * GIGA
