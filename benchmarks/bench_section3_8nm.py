"""Section 3's in-text 8 nm claims (no figure of their own).

Two statements the paper makes about the 361-core 8 nm chip without
plotting them:

* §3.2: repeating the Figure 6 experiment at 8 nm gives a *smaller*
  dark-silicon reduction than at 11 nm ("the power densities are very
  high ... on the other hand, at 8 nm more v/f levels are available");
* §3.3: the Figure 7 DVFS scenario still wins at 8 nm (the paper
  measures 1.5x on its calibration; on ours the 185 W TDP binds less
  hard at 8 nm, so the gain is positive but smaller — recorded in
  EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.experiments import fig06_temperature_constraint, fig07_dvfs


def _study():
    fig6 = fig06_temperature_constraint.run(node_names=("11nm", "8nm"))
    fig7 = fig07_dvfs.run(node_names=("8nm",))
    return fig6, fig7


def test_8nm_text_claims(benchmark):
    fig6, fig7 = benchmark.pedantic(_study, rounds=1, iterations=1)

    by_node = {n.node: n for n in fig6.nodes}
    print("\n=== Section 3 in-text 8 nm claims ===")
    print(
        f"fig6 avg dark-silicon reduction: 11nm "
        f"{100 * by_node['11nm'].average_reduction:.1f} p.p., 8nm "
        f"{100 * by_node['8nm'].average_reduction:.1f} p.p."
    )
    (node8,) = fig7.nodes
    ratios = [a.gips_dvfs / a.gips_nominal for a in node8.apps]
    print(
        f"fig7 @8nm scenario2/scenario1: avg {np.mean(ratios):.2f}x, "
        f"max gain {100 * node8.max_gain:.0f}%"
    )

    # §3.2: the 8 nm reduction is smaller than the 11 nm one.
    assert by_node["8nm"].average_reduction < by_node["11nm"].average_reduction
    # Both remain positive (temperature never loses to TDP).
    assert by_node["8nm"].average_reduction > 0.0

    # §3.3: DVFS still never loses at 8 nm and wins on average.
    assert all(a.gain >= -1e-9 for a in node8.apps)
    assert np.mean(ratios) > 1.0
