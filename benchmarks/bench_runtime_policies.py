"""Extension benchmark: online resource management, TDP-FIFO vs TSP.

The paper's closing argument — thermal-aware dark-silicon management
beats fixed power budgeting — replayed as an *online* scheduling problem:
the same saturating job stream is run under a TDP-FIFO admission policy
and under a TSP-guided thermally verified policy.  Expected shape: the
TSP policy sustains higher throughput and utilisation at equal-or-better
thermal safety, finishing the stream sooner with less energy.
"""

import pytest

from repro.apps.parsec import PARSEC
from repro.core.tsp import ThermalSafePower
from repro.experiments.common import get_chip
from repro.runtime import (
    OnlineSimulator,
    TdpFifoPolicy,
    TspAdaptivePolicy,
    deterministic_job_stream,
)


def _study():
    chip = get_chip("16nm")
    apps = [PARSEC[n] for n in ("x264", "canneal", "swaptions", "ferret")]
    jobs = deterministic_job_stream(
        apps, n_jobs=60, mean_interarrival=0.3, work=400e9, seed=3
    )
    tdp = OnlineSimulator(chip, TdpFifoPolicy(tdp=185.0)).run(jobs)
    tsp = OnlineSimulator(
        chip, TspAdaptivePolicy(ThermalSafePower(chip))
    ).run(jobs)
    return chip, tdp, tsp


def test_runtime_policies(benchmark):
    chip, tdp, tsp = benchmark.pedantic(_study, rounds=1, iterations=1)

    print("\n=== Online management: TDP-FIFO vs TSP-adaptive (60 jobs) ===")
    print(f"{'policy':10s} {'makespan':>9} {'resp':>6} {'GIPS':>6} {'util':>6} {'peak':>6} {'E [kJ]':>7}")
    for name, r in (("TDP-FIFO", tdp), ("TSP", tsp)):
        print(
            f"{name:10s} {r.makespan:>8.1f}s {r.mean_response_time:>5.1f}s "
            f"{r.throughput_gips:>6.0f} {r.utilisation:>5.0%} "
            f"{r.max_peak_temperature:>6.1f} {r.energy / 1e3:>7.1f}"
        )

    # Both complete the whole stream.
    assert len(tdp.records) == 60
    assert len(tsp.records) == 60
    # Both stay thermally safe (the TDP baseline thanks to the spread
    # placer and the pessimistic 185 W budget).
    assert tdp.max_peak_temperature <= chip.t_dtm + 0.5
    assert tsp.max_peak_temperature <= chip.t_dtm + 1e-6
    # The TSP policy finishes the saturating stream faster ...
    assert tsp.makespan < tdp.makespan
    # ... with higher sustained throughput and utilisation ...
    assert tsp.throughput_gips > tdp.throughput_gips
    assert tsp.utilisation > tdp.utilisation
    # ... and no more energy.
    assert tsp.energy <= tdp.energy * 1.05
