"""Ablation: process variation and variability-aware dark silicon.

The DaSim work the paper builds on (Section 4) is *variability-aware*:
which cores are left dark should depend on the die's leakage map.  This
ablation draws a strongly varied die (log-normal leakage, ~3x spread),
maps the same workload with a variation-oblivious and a variation-aware
placer, and quantifies the leakage power the aware policy saves — plus
the estimation error a variation-oblivious analysis makes when its
mapping lands on leaky silicon.
"""

import numpy as np
import pytest

from repro.apps.parsec import PARSEC
from repro.apps.workload import Workload
from repro.core.constraints import PowerBudgetConstraint
from repro.core.estimator import map_workload
from repro.experiments.common import get_chip
from repro.mapping.patterns import ThermalSpreadPlacer
from repro.variation import (
    VariationAwarePlacer,
    VariationMap,
    mapping_power_with_variation,
    varied_power_evaluator,
)


def _study():
    chip = get_chip("16nm")
    vmap = VariationMap.generate(chip, sigma=0.5, seed=2015)
    evaluator = varied_power_evaluator(chip, vmap)
    workload = Workload.replicate(PARSEC["x264"], 7, 8, chip.node.f_max)

    oblivious = map_workload(
        chip, workload, PowerBudgetConstraint(1e9),
        placer=ThermalSpreadPlacer(), power_evaluator=evaluator,
    )
    aware = map_workload(
        chip, workload, PowerBudgetConstraint(1e9),
        placer=VariationAwarePlacer(vmap, leakage_weight=4.0),
        power_evaluator=evaluator,
    )
    # What a variation-oblivious *analysis* of the oblivious mapping
    # believes, vs what the varied die actually draws.
    nominal_estimate = map_workload(
        chip, workload, PowerBudgetConstraint(1e9), placer=ThermalSpreadPlacer()
    )
    actual = mapping_power_with_variation(nominal_estimate, vmap)
    return chip, vmap, oblivious, aware, nominal_estimate, float(actual.sum())


def test_variation_ablation(benchmark):
    chip, vmap, oblivious, aware, nominal, actual_power = benchmark.pedantic(
        _study, rounds=1, iterations=1
    )

    print("\n=== Ablation: process variation (16 nm, 7x x264, sigma=0.5) ===")
    print(f"die leakage spread:        {vmap.spread:.2f}x")
    print(f"oblivious placer power:    {oblivious.total_power:.2f} W")
    print(f"aware placer power:        {aware.total_power:.2f} W")
    print(f"nominal analysis power:    {nominal.total_power:.2f} W")
    print(f"actual power on this die:  {actual_power:.2f} W")

    # The generated die shows a realistic leakage spread.
    assert 2.0 <= vmap.spread <= 6.0

    # Same workload, same core count — the aware placer draws less power.
    assert aware.active_cores == oblivious.active_cores
    assert aware.total_power < oblivious.total_power

    # A nominal (variation-free) analysis misestimates the varied die's
    # power; the error is visible but bounded (leakage is a single-digit
    # share of Eq. (1) at this calibration).
    error = abs(actual_power - nominal.total_power) / nominal.total_power
    assert 0.0 < error < 0.10

    # Both mappings remain thermally representable.
    assert aware.peak_temperature < 85.0
    assert oblivious.peak_temperature < 85.0
