"""Bench-track: append a timed + instrumented entry to BENCH_TRACK.json.

Runs the bench-smoke set (the two hot-path benchmarks, Figure 10 TSP and
the online runtime-policy study) with the :mod:`repro.obs` registry
enabled, then

* appends one entry — wall-clock plus the per-bench registry snapshot
  (solver calls, cache hit/miss, TSP table builds, sweep stages,
  runtime/DTM events, gauges, histograms), per-bench resource figures
  (peak RSS and tracemalloc-attributed allocation, measured in an extra
  *untimed* round so the tracer never skews the timings), a compact
  span-timeline digest from the trace recorder, and the repo-wide code
  fingerprint — to ``BENCH_TRACK.json`` at the repo root,
* evaluates the declarative metric budgets in
  ``benchmarks/budgets.json`` (:mod:`repro.obs.watch`) against every
  bench snapshot — verdicts land in the entry, hard violations fail
  the run naming the violating metric — and
* compares wall-clock against the committed baseline
  (``benchmarks/bench_baseline.json``), printing the per-bench delta
  table and exiting non-zero when any bench regressed by more than
  :data:`REGRESSION_LIMIT`.

Usage::

    make bench-track                # append + regression gate
    python benchmarks/track.py --rebaseline   # refresh the baseline
    make bench-backends             # fig10 smoke under every backend

Entries record the active thermal solver backend, so trajectory points
taken under different backends (``REPRO_THERMAL_BACKEND``) stay
attributable.  ``--backends`` times ``bench_fig10_tsp`` once under each
registered backend and prints the comparison without appending.

Each bench is timed best-of-N (default 2) to damp scheduler noise; the
registry snapshot is taken from the *last* round, after a reset, so
counters describe exactly one run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402

#: Maximum tolerated wall-clock growth vs. the committed baseline.
REGRESSION_LIMIT = 0.20

#: Best-of-N rounds per bench.
ROUNDS = 2

TRACK_FILE = REPO_ROOT / "BENCH_TRACK.json"
BASELINE_FILE = REPO_ROOT / "benchmarks" / "bench_baseline.json"
BUDGETS_FILE = REPO_ROOT / "benchmarks" / "budgets.json"

_MIB = 1024.0 * 1024.0


def _bench_fig10_tsp() -> None:
    from repro.experiments import fig10_tsp

    fig10_tsp.run()


def _bench_runtime_policies() -> None:
    from repro.apps.parsec import PARSEC
    from repro.core.tsp import ThermalSafePower
    from repro.experiments.common import get_chip
    from repro.runtime import (
        OnlineSimulator,
        TdpFifoPolicy,
        TspAdaptivePolicy,
        deterministic_job_stream,
    )

    chip = get_chip("16nm")
    apps = [PARSEC[n] for n in ("x264", "canneal", "swaptions", "ferret")]
    jobs = deterministic_job_stream(
        apps, n_jobs=60, mean_interarrival=0.3, work=400e9, seed=3
    )
    OnlineSimulator(chip, TdpFifoPolicy(tdp=185.0)).run(jobs)
    OnlineSimulator(chip, TspAdaptivePolicy(ThermalSafePower(chip))).run(jobs)


def _bench_3d_steady() -> None:
    """4-layer stack build + batched multi-RHS steady-state solves.

    Tracks how the PR 6 solver backends scale with layer count: a
    400-core, 4-layer 16 nm stack is built cold (model assembly, one
    factorisation, the 400-RHS influence solve), then a 256-vector
    batch runs through the batched engine and its peak reduction.
    """
    import numpy as np

    from repro.chip import Chip
    from repro.tech.library import node_by_name

    chip = Chip.stacked_grid(node_by_name("16nm"), 10, 10, 4)
    engine = chip.engine
    rng = np.random.default_rng(42)
    batch = rng.uniform(0.5, 3.0, size=(256, chip.n_cores))
    engine.temperatures(batch)
    engine.peak_temperatures(batch)


BENCHES = {
    "bench_fig10_tsp": _bench_fig10_tsp,
    "bench_runtime_policies": _bench_runtime_policies,
    "bench_3d_steady": _bench_3d_steady,
}


def lint_status() -> dict:
    """Run the repro.lint pass and summarise it for the track entry.

    A trajectory point from a tree that does not lint clean is not a
    trustworthy measurement (e.g. stray nondeterminism in model code
    skews counters), so :func:`main` also gates on ``clean``.

    Runs twice against a throwaway summary cache so each track entry
    also records the two-phase analyzer's own performance: cold and
    warm phase-1/phase-2 wall-clock plus the warm-run summary-cache
    hit rate (any warm miss means cache-key drift).
    """
    import shutil
    import tempfile

    from repro import lint

    manifest = lint.MetricManifest.load(REPO_ROOT / "docs" / "metrics.txt")
    baseline = lint.Baseline.load_if_exists(REPO_ROOT / "lint_baseline.json")
    cache_dir = Path(tempfile.mkdtemp(prefix="lint-track-cache-"))
    try:
        cold = lint.lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests"],
            manifest=manifest,
            baseline=baseline,
            cache_dir=cache_dir,
        )
        warm = lint.lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests"],
            manifest=manifest,
            baseline=baseline,
            cache_dir=cache_dir,
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    hits = warm.timings.get("cache_hits", 0)
    misses = warm.timings.get("cache_misses", 0)
    return {
        "clean": cold.clean,
        "files": cold.files,
        "findings": cold.counts(),
        "baseline_suppressed": cold.baseline_suppressed,
        "analysis": {
            "cold_phase1_s": round(cold.timings.get("phase1_s", 0.0), 4),
            "cold_phase2_s": round(cold.timings.get("phase2_s", 0.0), 4),
            "warm_phase1_s": round(warm.timings.get("phase1_s", 0.0), 4),
            "warm_phase2_s": round(warm.timings.get("phase2_s", 0.0), 4),
            "warm_cache_hit_rate": round(hits / max(1, hits + misses), 4),
        },
    }


def measure_resources(fn) -> dict:
    """One extra *untimed* round of ``fn`` under tracemalloc.

    Returns net and peak traced allocation across the round plus the
    process's peak RSS after it.  Run separately from the timed rounds
    on purpose: tracemalloc slows allocation-heavy code noticeably, so
    folding it into the timed loop would eat the 20 % regression margin
    with instrumentation cost instead of real work.  (Peak RSS is a
    process-wide high-water mark — monotone across benches — so the
    first bench to touch a big working set dominates the later ones.)
    """
    import tracemalloc

    from repro.experiments.common import get_chip
    from repro.obs.resources import max_rss_bytes

    get_chip.cache_clear()
    obs.reset()
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    before = tracemalloc.get_traced_memory()[0]
    fn()
    current, peak = tracemalloc.get_traced_memory()
    if not already_tracing:
        tracemalloc.stop()
    return {
        "alloc_bytes": current - before,
        "peak_alloc_bytes": max(peak - before, 0),
        "peak_rss_bytes": max_rss_bytes(),
    }


def run_benches() -> dict[str, dict]:
    """Time every bench (best-of-ROUNDS) with a fresh registry snapshot.

    The per-process chip cache is cleared before every round so each
    round pays the full cold path (model build, influence solve, TSP
    tables) — sub-millisecond warm-path timings would drown a 20 % gate
    in scheduler noise.

    Tracing is on, so every entry also carries a compact span-timeline
    digest (event count plus the hottest paired spans) next to the
    snapshot's counters, gauges and histograms.
    """
    from repro.experiments.common import get_chip
    from repro.obs.trace import pair_spans

    results: dict[str, dict] = {}
    for name, fn in BENCHES.items():
        best = float("inf")
        for _ in range(ROUNDS):
            get_chip.cache_clear()
            obs.reset()
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        events = obs.trace_events()
        totals: dict[str, list[float]] = {}
        for span in pair_spans(events):
            agg = totals.setdefault(span["name"], [0, 0.0])
            agg[0] += 1
            agg[1] += span["duration_us"] / 1e3
        top = sorted(totals.items(), key=lambda kv: -kv[1][1])[:5]
        snap = obs.snapshot()
        resources = measure_resources(fn)
        results[name] = {
            "wall_s": round(best, 4),
            "obs": snap,
            "resources": resources,
            "trace": {
                "events": len(events),
                "top_spans": [
                    {"name": n, "count": c, "total_ms": round(ms, 3)}
                    for n, (c, ms) in top
                ],
            },
        }
        print(
            f"{name}: {best:.3f} s"
            f"  peak-rss {resources['peak_rss_bytes'] / _MIB:7.1f} MiB"
            f"  alloc {resources['peak_alloc_bytes'] / _MIB:7.1f} MiB"
        )
    return results


def append_entry(results: dict[str, dict], lint: dict) -> None:
    """Append one trajectory entry to BENCH_TRACK.json."""
    if TRACK_FILE.exists():
        trajectory = json.loads(TRACK_FILE.read_text())
    else:
        trajectory = []
    from repro.obs.manifest import code_fingerprint

    from repro.thermal.backends import default_backend_name

    trajectory.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "fingerprint": code_fingerprint(),
            "thermal_backend": default_backend_name(),
            "lint": lint,
            "benches": results,
        }
    )
    TRACK_FILE.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    print(f"[appended entry #{len(trajectory)} to {TRACK_FILE.name}]")


def check_budgets(
    results: dict[str, dict], budgets_path: Path = BUDGETS_FILE
) -> int:
    """Evaluate the metric budgets against every bench snapshot.

    Each bench's verdicts are recorded into ``results[name]["budgets"]``
    (so :func:`append_entry` persists them with the entry); every
    violation is printed with the violating metric named, and the exit
    code is non-zero when any *hard* budget is violated.  A missing
    budgets file skips the watchdog with a notice — an unreadable or
    invalid one fails loudly.
    """
    from repro.obs import watch

    budgets_path = Path(budgets_path)
    if not budgets_path.exists():
        print(f"[no budgets file at {budgets_path}; watchdog skipped]")
        return 0
    budgets = watch.load_budgets(budgets_path)
    failed = False
    for name, result in results.items():
        verdicts = watch.evaluate(budgets, result["obs"])
        result["budgets"] = [
            {
                "metric": v.metric,
                "expect": v.budget.describe(),
                "ok": v.ok,
                "value": v.value,
                "severity": v.budget.severity,
                "detail": v.detail,
            }
            for v in verdicts
        ]
        bad = watch.violations(verdicts, include_soft=True)
        hard = [v for v in bad if v.budget.is_hard]
        print(
            f"budgets[{name}]: {len(verdicts) - len(bad)}/{len(verdicts)} "
            f"ok, {len(bad) - len(hard)} soft / {len(hard)} hard "
            "violation(s)"
        )
        for v in bad:
            stream = sys.stderr if v.budget.is_hard else sys.stdout
            print(f"  {name}: {v.describe()}", file=stream)
        if hard:
            failed = True
    if failed:
        print(
            f"hard budget violation(s); fix the regression or revise "
            f"{budgets_path.name} deliberately",
            file=sys.stderr,
        )
        return 1
    return 0


def check_regressions(results: dict[str, dict]) -> int:
    """Compare against the committed baseline; return the exit code."""
    if not BASELINE_FILE.exists():
        print(
            f"no baseline at {BASELINE_FILE}; run with --rebaseline first",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(BASELINE_FILE.read_text())
    failed = False
    width = max(len(n) for n in results)
    print(f"{'bench':<{width}}  {'current':>9}  {'baseline':>9}  "
          f"{'delta':>7}  status")
    for name, result in results.items():
        base = baseline.get(name)
        if base is None:
            print(f"{name:<{width}}  {result['wall_s']:>8.3f}s  "
                  f"{'—':>9}  {'—':>7}  no baseline (add with --rebaseline)")
            continue
        ratio = result["wall_s"] / base["wall_s"]
        status = "ok" if ratio <= 1.0 + REGRESSION_LIMIT else "REGRESSION"
        print(
            f"{name:<{width}}  {result['wall_s']:>8.3f}s  "
            f"{base['wall_s']:>8.3f}s  {(ratio - 1) * 100:>+6.1f}%  {status}"
        )
        if status == "REGRESSION":
            failed = True
    if failed:
        print(
            f"wall-clock regression beyond {REGRESSION_LIMIT:.0%}; "
            f"investigate before merging (or --rebaseline deliberately)",
            file=sys.stderr,
        )
        return 1
    return 0


def compare_backends() -> int:
    """Time ``bench_fig10_tsp`` once per registered solver backend.

    A smoke comparison, not a trajectory point: nothing is appended to
    BENCH_TRACK.json.  Exit code is non-zero if any backend fails to
    complete the bench.
    """
    from repro.experiments.common import get_chip
    from repro.thermal import backends

    rows = []
    for name in backends.backend_names():
        backends.set_default_backend(name)
        try:
            best = float("inf")
            for _ in range(ROUNDS):
                get_chip.cache_clear()
                obs.reset()
                start = time.perf_counter()
                _bench_fig10_tsp()
                best = min(best, time.perf_counter() - start)
            rows.append((name, best, None))
        except Exception as exc:  # noqa: BLE001 - smoke report, keep going
            rows.append((name, None, f"{type(exc).__name__}: {exc}"))
        finally:
            backends.set_default_backend(None)
    width = max(len(n) for n, _, _ in rows)
    print(f"{'backend':<{width}}  bench_fig10_tsp")
    failed = False
    for name, wall, error in rows:
        if wall is None:
            print(f"{name:<{width}}  FAILED ({error})")
            failed = True
        else:
            print(f"{name:<{width}}  {wall:.3f} s")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rebaseline",
        action="store_true",
        help="write benchmarks/bench_baseline.json from this run and exit",
    )
    parser.add_argument(
        "--backends",
        action="store_true",
        help="smoke-run bench_fig10_tsp under every thermal solver "
        "backend and print the comparison (no entry appended)",
    )
    parser.add_argument(
        "--budgets",
        type=Path,
        default=BUDGETS_FILE,
        metavar="PATH",
        help="metric-budgets file for the watchdog "
        "(default: benchmarks/budgets.json; absent file skips)",
    )
    args = parser.parse_args(argv)

    obs.enable()
    obs.enable_trace()
    obs.validate_names()
    if args.backends:
        return compare_backends()
    results = run_benches()

    if args.rebaseline:
        BASELINE_FILE.write_text(
            json.dumps(
                {name: {"wall_s": r["wall_s"]} for name, r in results.items()},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"[baseline written to {BASELINE_FILE}]")
        return 0

    budgets_rc = check_budgets(results, args.budgets)
    lint = lint_status()
    counts = ", ".join(f"{k}: {v}" for k, v in sorted(lint["findings"].items()))
    print(f"lint: {'clean' if lint['clean'] else counts} "
          f"({lint['files']} files)")
    analysis = lint["analysis"]
    print(f"lint analysis: cold {analysis['cold_phase1_s']:.3f}s + "
          f"{analysis['cold_phase2_s']:.3f}s, warm {analysis['warm_phase1_s']:.3f}s + "
          f"{analysis['warm_phase2_s']:.3f}s, "
          f"hit rate {analysis['warm_cache_hit_rate']:.0%}")
    append_entry(results, lint)
    if not lint["clean"]:
        print(
            "tree does not lint clean; fix or ratify findings "
            "(see docs/linting.md) before trusting this entry",
            file=sys.stderr,
        )
        return 1
    return check_regressions(results) or budgets_rc


if __name__ == "__main__":
    sys.exit(main())
