"""Ablation: calibration sensitivity of the headline claims.

The catalogue constants are calibrated, not measured; this ablation
perturbs each Eq. (1) coefficient axis by +-10 % and re-checks the
paper's central shape claims.  A reproduction whose conclusions flip
inside the calibration error bars would not be worth much — this one's
do not.
"""

import pytest

from repro.experiments.common import get_chip
from repro.sensitivity import sensitivity_sweep


def _study():
    chip = get_chip("16nm")
    return sensitivity_sweep(chip, scales=(0.85, 1.15))


def test_sensitivity_ablation(benchmark):
    sweep = benchmark.pedantic(_study, rounds=1, iterations=1)

    print("\n=== Ablation: calibration sensitivity (+-15 %) ===")
    print(f"{'axis':6s} {'scale':>6} {'TDP order':>10} {'deep dark':>10} {'temp<=TDP':>10} {'DVFS>=':>7} {'pattern':>8}")
    for (axis, scale), s in sweep.items():
        print(
            f"{axis:6s} {scale:>6.2f} "
            f"{str(s.pessimistic_darker_than_optimistic):>10} "
            f"{str(s.some_dark_silicon_at_max_vf):>10} "
            f"{str(s.temperature_never_worse):>10} "
            f"{str(s.dvfs_never_loses):>7} "
            f"{str(s.patterning_helps):>8}"
        )

    assert len(sweep) == 6
    # Directional claims survive every +-15 % single-axis perturbation.
    for key, shapes in sweep.items():
        assert shapes.temperature_never_worse, key
        assert shapes.dvfs_never_loses, key
        assert shapes.patterning_helps, key
        assert shapes.pessimistic_darker_than_optimistic, key
    # The magnitude claim (deep dark silicon at max v/f) survives the
    # dominant axis (Ceff) in both directions.
    assert sweep[("ceff", 0.85)].some_dark_silicon_at_max_vf
    assert sweep[("ceff", 1.15)].some_dark_silicon_at_max_vf
