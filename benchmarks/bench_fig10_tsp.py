"""Figure 10: TSP-governed performance across technology nodes."""

from benchmarks._util import emit
from repro.experiments import fig10_tsp


def test_fig10_tsp(benchmark):
    result = benchmark.pedantic(fig10_tsp.run, rounds=1, iterations=1)
    emit("Figure 10: performance under TSP (20/30/40 % dark)", result)

    n16 = result.node("16nm")
    n11 = result.node("11nm")
    n8 = result.node("8nm")

    # Performance keeps rising with newer nodes despite more dark silicon.
    assert n16.average_gips < n11.average_gips < n8.average_gips
    assert n16.dark_share < n11.dark_share < n8.dark_share

    # Paper: ~60 % average increment from 11 nm to 8 nm.
    gain = n8.average_gips / n11.average_gips - 1.0
    assert 0.3 <= gain <= 1.2

    # Per-app TSP budgets per core shrink as the active count grows
    # across nodes (more, smaller cores).
    assert n16.tsp_per_core > n11.tsp_per_core > n8.tsp_per_core

    # Per-core power respects the TSP budget in every case.
    for node in result.nodes:
        for app in node.apps:
            assert app.per_core_power <= node.tsp_per_core + 1e-9

    # Total performance scale matches the paper's axis (hundreds of GIPS
    # at 16 nm up to ~1000+ GIPS at 8 nm).
    assert 100 <= n16.average_gips <= 500
    assert 500 <= n8.average_gips <= 1500
