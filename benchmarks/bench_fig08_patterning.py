"""Figure 8: dark-silicon patterning thermal profiles."""

import numpy as np
import pytest

from benchmarks._util import emit
from repro.experiments import fig08_patterning


def test_fig08_patterning(benchmark):
    result = benchmark.pedantic(fig08_patterning.run, rounds=1, iterations=1)
    emit("Figure 8: contiguous vs patterned mapping", result)

    safe = result.contiguous_safe
    forced = result.contiguous_forced
    patterned = result.patterned

    # The pattern switches on more cores than the safe contiguous map
    # (the paper shows 52 -> 60).
    assert result.extra_active_cores > 0
    assert patterned.active_cores > safe.active_cores

    # Same workload, two placements: contiguous violates T_DTM, the
    # pattern does not — at identical total power.
    assert forced.active_cores == patterned.active_cores
    assert forced.total_power == pytest.approx(patterned.total_power)
    assert forced.exceeds_t_dtm
    assert not patterned.exceeds_t_dtm
    assert forced.peak_temperature > patterned.peak_temperature

    # The patterned map runs more total power than the safe contiguous
    # one (the paper shows 196 W -> 226 W).
    assert patterned.total_power > safe.total_power

    # Thermal maps: the contiguous map concentrates its hot spot (larger
    # spatial temperature spread than the pattern).
    assert np.ptp(forced.thermal_map) > np.ptp(patterned.thermal_map)
