"""Figure 5: dark silicon under the optimistic/pessimistic TDP."""

from benchmarks._util import emit
from repro.experiments import fig05_tdp_dark_silicon


def test_fig05_tdp_dark_silicon(benchmark):
    result = benchmark.pedantic(
        fig05_tdp_dark_silicon.run, rounds=1, iterations=1
    )
    emit("Figure 5: dark silicon vs v/f under two TDPs", result)

    opt, pess = result.tdp_optimistic, result.tdp_pessimistic

    # Paper: up to ~37 % dark at 220 W, up to ~46 % at 185 W.
    assert 0.30 <= result.max_dark_fraction(opt) <= 0.50
    assert 0.40 <= result.max_dark_fraction(pess) <= 0.60
    assert result.max_dark_fraction(pess) > result.max_dark_fraction(opt)

    # Observation 1: the optimistic TDP produces thermal violations for
    # the power-hungry applications, the pessimistic one never does.
    opt_peaks = result.peak_temperatures(opt)
    pess_peaks = result.peak_temperatures(pess)
    assert sum(1 for t in opt_peaks.values() if t > 80.0) >= 2
    assert all(t <= 80.5 for t in pess_peaks.values())

    # Observation 2: within each sweep, dark silicon never increases
    # when the v/f level is lowered.
    for tdp in (opt, pess):
        for app, points in result.sweeps[tdp].items():
            darks = [p.dark_fraction for p in points]
            assert darks == sorted(darks), (tdp, app)

    # The hungriest application (swaptions) shows the deepest dark share.
    deepest = max(
        result.sweeps[pess], key=lambda a: result.sweeps[pess][a][-1].dark_fraction
    )
    assert deepest == "swaptions"
