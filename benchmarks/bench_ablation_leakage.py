"""Ablation: the temperature/leakage feedback loop.

Eq. (1)'s leakage term depends on temperature, which depends on power —
a positive feedback the solver closes with a fixed point.  This ablation
quantifies what ignoring the loop (evaluating leakage at a fixed
temperature) would do to the chip-level numbers: underestimating power
near the thermal limit, and with it the dark-silicon amounts.
"""

import numpy as np
import pytest

from repro.apps.parsec import PARSEC
from repro.apps.workload import Workload
from repro.boosting.simulation import place_workload
from repro.experiments.common import get_chip
from repro.mapping.patterns import NeighbourhoodSpreadPlacer


def _study():
    chip = get_chip("16nm")
    workload = Workload.replicate(PARSEC["x264"], 12, 8, chip.node.f_max)
    placed = place_workload(chip, workload, placer=NeighbourhoodSpreadPlacer())
    f = 2.8e9

    # Open loop at ambient: leakage evaluated at 45 degC everywhere.
    base = placed.base_powers(f)
    open_cold = base + placed.leakage_powers(
        f, np.full(chip.n_cores, chip.ambient)
    )
    peak_open_cold = chip.solver.peak_temperature(open_cold)

    # Open loop at T_DTM: the conservative budgeting convention.
    open_hot = base + placed.leakage_powers(
        f, np.full(chip.n_cores, chip.t_dtm)
    )
    peak_open_hot = chip.solver.peak_temperature(open_hot)

    # Closed loop: the consistent fixed point.
    temps, powers = chip.solver.solve_with_leakage(
        base, lambda t: placed.leakage_powers(f, t)
    )
    return {
        "open@45C": (float(open_cold.sum()), peak_open_cold),
        "open@80C": (float(open_hot.sum()), peak_open_hot),
        "closed": (float(powers.sum()), float(temps.max())),
    }


def test_leakage_feedback_ablation(benchmark):
    outcomes = benchmark.pedantic(_study, rounds=1, iterations=1)

    print("\n=== Ablation: leakage/temperature feedback (12x x264, 2.8 GHz) ===")
    print(f"{'model':10s} {'power [W]':>10} {'peak [degC]':>12}")
    for label, (power, peak) in outcomes.items():
        print(f"{label:10s} {power:>10.1f} {peak:>12.2f}")

    p_cold, t_cold = outcomes["open@45C"]
    p_hot, t_hot = outcomes["open@80C"]
    p_closed, t_closed = outcomes["closed"]

    # Cold-leakage evaluation underestimates both power and temperature.
    assert p_cold < p_closed < p_hot
    assert t_cold < t_closed <= t_hot + 0.1
    # The worst-case convention (evaluate at T_DTM) is conservative but
    # close when the chip actually runs near the limit: within ~5 %.
    assert (p_hot - p_closed) / p_closed < 0.05
    # The feedback is a real effect: ignoring it at ambient hides at
    # least one watt of chip power here.
    assert p_closed - p_cold > 1.0
