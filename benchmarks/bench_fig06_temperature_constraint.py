"""Figure 6: TDP vs temperature as the dark-silicon constraint."""

from benchmarks._util import emit
from repro.experiments import fig06_temperature_constraint


def test_fig06_temperature_constraint(benchmark):
    result = benchmark.pedantic(
        fig06_temperature_constraint.run, rounds=1, iterations=1
    )
    emit("Figure 6: dark silicon, TDP vs temperature constraint", result)

    for node in result.nodes:
        # Temperature as the constraint never yields *more* dark silicon.
        for app, (dark_tdp, dark_temp, peak) in node.per_app.items():
            assert dark_temp <= dark_tdp + 1e-9, (node.node, app)
            assert peak <= 80.0 + 1e-6, (node.node, app)
        # And reduces it on average (paper reports 32 %/40 %; with the
        # paper's own package the physically achievable average is a few
        # percentage points — see EXPERIMENTS.md).
        assert node.average_reduction > 0.0, node.node

    # Per-app reductions reach at least ~8 p.p. somewhere.
    best = max(
        d_tdp - d_temp
        for node in result.nodes
        for d_tdp, d_temp, _ in node.per_app.values()
    )
    assert best >= 0.05
