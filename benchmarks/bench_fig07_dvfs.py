"""Figure 7: DVFS per application characteristics vs nominal frequency."""

from benchmarks._util import emit
from repro.experiments import fig07_dvfs


def test_fig07_dvfs(benchmark):
    result = benchmark.pedantic(fig07_dvfs.run, rounds=1, iterations=1)
    emit("Figure 7: Scenario 1 (nominal) vs Scenario 2 (DVFS)", result)

    by_node = {n.node: n for n in result.nodes}

    for node in result.nodes:
        # DVFS never loses (the paper's "always improves the overall
        # system performance").
        for app in node.apps:
            assert app.gain >= -1e-9, (node.node, app.app)

    # Peak gains in the paper's bands: up to ~32 % (16 nm), ~38 % (11 nm).
    assert 0.20 <= by_node["16nm"].max_gain <= 0.60
    assert 0.20 <= by_node["11nm"].max_gain <= 0.60

    # The TLP/ILP story: the biggest gainer trades frequency for width —
    # it runs *below* the nominal maximum with more active cores than
    # Scenario 1 gave it.
    from repro.experiments.common import get_chip

    for node in result.nodes:
        best = max(node.apps, key=lambda a: a.gain)
        assert best.frequency_dvfs < get_chip(node.node).node.f_max
        assert best.active_dvfs > best.active_nominal
