"""Figure 14: STC vs NTC at ISO performance (24 instances, 11 nm)."""

import pytest

from benchmarks._util import emit
from repro.experiments import fig14_ntc
from repro.power.vf_curve import Region


def test_fig14_ntc(benchmark):
    result = benchmark(fig14_ntc.run)
    emit("Figure 14: STC vs NTC ISO-performance energy", result)

    apps = sorted({p.app for p in result.points})
    assert len(apps) == 7

    for app in apps:
        schemes = result.by_app(app)
        assert set(schemes) == {"ntc", "stc-1t", "stc-2t"}
        # ISO performance holds across feasible schemes.
        feasible = [p.gips for p in schemes.values() if p.feasible]
        assert max(feasible) == pytest.approx(min(feasible), rel=1e-9)
        # The NTC point is genuinely near-threshold.
        assert schemes["ntc"].region is Region.NTC

    # Observation 4 shapes: NTC beats single-thread STC for every
    # thread-scalable application...
    for app in apps:
        if app == "canneal":
            continue
        schemes = result.by_app(app)
        if schemes["stc-1t"].feasible:
            assert schemes["ntc"].energy_kj < schemes["stc-1t"].energy_kj, app

    # ...but loses for canneal, whose threads barely scale.
    canneal = result.by_app("canneal")
    assert canneal["ntc"].energy_kj > canneal["stc-1t"].energy_kj
    assert canneal["ntc"].energy_kj > canneal["stc-2t"].energy_kj

    # Energy scale: the paper plots single-digit kJ per workload.
    assert all(0.01 <= p.energy_kj <= 10.0 for p in result.points)
