#!/usr/bin/env python3
"""Dark-silicon projections across technology nodes (the paper's Section 3).

The work the paper revises (Esmaeilzadeh et al., ISCA 2011) predicted
more than 50 % dark silicon at 22 nm from a pure power-budget argument.
This study replays the projection with this library's models for the
three evaluated nodes (16/11/8 nm) and contrasts three methodologies:

1. fixed TDP at the nominal maximum frequency (the criticised approach),
2. the temperature constraint at nominal frequency, and
3. the temperature constraint with per-application DVFS (TSP-guided) —
   the paper's recommended view, under which "dark" silicon is largely
   *dim* silicon running at a lower v/f.

Run:  python examples/technology_scaling_study.py
"""

from repro import (
    Chip,
    PARSEC,
    PowerBudgetConstraint,
    TemperatureConstraint,
    NeighbourhoodSpreadPlacer,
    ThermalSafePower,
    estimate_dark_silicon,
)
from repro.tech import EVALUATED_NODES

TDP = 185.0
APP = "ferret"  # a representative power-hungry application


def main() -> None:
    app = PARSEC[APP]
    placer = NeighbourhoodSpreadPlacer()

    print(f"Application: {APP}, 8-thread instances, TDP {TDP:.0f} W\n")
    header = (
        f"{'node':6s} {'cores':>6} {'f_nom':>6} "
        f"{'dark@TDP':>9} {'dark@T':>7} {'dark@T+DVFS':>12} {'GIPS@T+DVFS':>12}"
    )
    print(header)
    print("-" * len(header))

    for node in EVALUATED_NODES:
        chip = Chip.for_node(node)
        f_nom = node.f_max

        at_tdp = estimate_dark_silicon(
            chip, app, f_nom, PowerBudgetConstraint(TDP), placer=placer
        )
        at_temp = estimate_dark_silicon(
            chip, app, f_nom, TemperatureConstraint(), placer=placer
        )

        # Temperature + DVFS: pick the TSP-safe frequency for a nearly
        # full chip and map at that level instead of the nominal one.
        tsp = ThermalSafePower(chip)
        m = (chip.n_cores // 8) * 8
        f_safe = tsp.safe_frequency(app, m)
        dim = estimate_dark_silicon(
            chip, app, f_safe, TemperatureConstraint(), placer=placer
        )

        print(
            f"{node.name:6s} {chip.n_cores:>6d} {f_nom / 1e9:>5.1f}G "
            f"{at_tdp.dark_fraction:>8.0%} {at_temp.dark_fraction:>6.0%} "
            f"{dim.dark_fraction:>11.0%} {dim.gips:>12.1f}"
        )

    print(
        "\nReading: the fixed power budget paints an ever darker picture "
        "at newer nodes,\nthe temperature constraint recovers some of it, "
        "and DVFS turns most of the rest\ninto dim (slower, still active) "
        "silicon — the paper's revised, less conservative\nprojection."
    )


if __name__ == "__main__":
    main()
