#!/usr/bin/env python3
"""Online dark-silicon management: jobs arriving on a live chip.

Sixty application jobs (x264, canneal, swaptions, ferret) arrive over
~20 seconds on the 100-core 16 nm chip — more work than the chip can run
at nominal v/f.  Two runtimes compete on the identical stream:

* **TDP-FIFO** — the state of practice: 8 threads at the maximum nominal
  frequency, admitted while the 185 W TDP has room;
* **TSP-adaptive** — the paper's proposal made operational: the v/f of
  each admission comes from the Thermal Safe Power table for the
  resulting active-core count, verified against the actual steady state.

Run:  python examples/online_resource_management.py
"""

from repro import Chip, NODE_16NM, PARSEC, ThermalSafePower
from repro.runtime import (
    OnlineSimulator,
    TdpFifoPolicy,
    TspAdaptivePolicy,
    deterministic_job_stream,
)


def main() -> None:
    chip = Chip.for_node(NODE_16NM)
    apps = [PARSEC[n] for n in ("x264", "canneal", "swaptions", "ferret")]
    jobs = deterministic_job_stream(
        apps, n_jobs=60, mean_interarrival=0.3, work=400e9, seed=3
    )
    print(
        f"Stream: {len(jobs)} jobs of {jobs[0].work / 1e9:.0f} G instructions, "
        f"arriving over {jobs[-1].arrival:.1f} s\n"
    )

    runs = {
        "TDP-FIFO (185 W)": OnlineSimulator(chip, TdpFifoPolicy(tdp=185.0)),
        "TSP-adaptive": OnlineSimulator(
            chip, TspAdaptivePolicy(ThermalSafePower(chip))
        ),
    }

    header = (
        f"{'policy':18s} {'makespan':>9} {'mean resp':>10} {'throughput':>11} "
        f"{'util':>6} {'peak T':>7} {'energy':>8}"
    )
    print(header)
    print("-" * len(header))
    results = {}
    for name, sim in runs.items():
        r = sim.run(jobs)
        results[name] = r
        print(
            f"{name:18s} {r.makespan:>8.1f}s {r.mean_response_time:>9.1f}s "
            f"{r.throughput_gips:>7.0f}GIPS {r.utilisation:>6.0%} "
            f"{r.max_peak_temperature:>6.1f}C {r.energy / 1e3:>6.1f}kJ"
        )

    tdp, tsp = results["TDP-FIFO (185 W)"], results["TSP-adaptive"]
    print(
        f"\nThe TSP runtime finishes "
        f"{(1 - tsp.makespan / tdp.makespan):.0%} sooner at "
        f"{(tsp.throughput_gips / tdp.throughput_gips - 1):+.0%} throughput, "
        f"never exceeding {tsp.max_peak_temperature:.1f} °C —\nbecause it "
        f"converts thermal headroom into admitted cores instead of idling "
        f"behind a\nfixed wattage number.  That is the paper's conclusion, "
        f"operating online."
    )


if __name__ == "__main__":
    main()
