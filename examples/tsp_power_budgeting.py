#!/usr/bin/env python3
"""Thermal Safe Power: a per-core power budget that adapts to core count.

TSP (paper Section 5) replaces the single TDP number with a function
TSP(m): the per-core budget that keeps *any* mapping of m active cores
below the DTM threshold.  This example

1. prints the TSP table for the 16 nm chip,
2. contrasts the chip-level budget m * TSP(m) with the fixed 185 W TDP,
3. picks, per application, the highest DVFS level whose Eq. (1) power
   fits TSP(m) — the paper's Figure 10 methodology.

Run:  python examples/tsp_power_budgeting.py
"""

from repro import Chip, NODE_16NM, PARSEC, ThermalSafePower
from repro.apps.parsec import PARSEC_ORDER
from repro.units import GIGA


def main() -> None:
    chip = Chip.for_node(NODE_16NM)
    tsp = ThermalSafePower(chip)

    print("TSP table (worst-case per-core budget vs active cores):")
    print(f"{'m':>4}  {'TSP(m) [W/core]':>16}  {'m*TSP(m) [W]':>13}")
    for m in (10, 20, 40, 60, 80, 100):
        print(f"{m:>4}  {tsp.worst_case(m):>16.2f}  {tsp.total_budget(m):>13.1f}")

    print(
        "\nNote how the chip-level safe budget *grows* with active cores "
        "while the\nper-core share shrinks — a single TDP cannot express "
        "both ends.\n"
    )

    m = 80  # 20 % dark silicon, the paper's 16 nm point in Figure 10
    budget = tsp.worst_case(m)
    print(
        f"With {m} active cores (20 % dark silicon), each core may draw "
        f"{budget:.2f} W."
    )
    print("Highest safe DVFS level per application (8-thread instances):")
    for name in PARSEC_ORDER:
        app = PARSEC[name]
        chosen = None
        for f in chip.node.frequency_ladder():
            if app.core_power(chip.node, 8, f, temperature=chip.t_dtm) <= budget:
                chosen = f
        instances = m // 8
        gips = instances * app.instance_performance(8, chosen) / 1e9
        print(
            f"  {name:13s} -> {chosen / GIGA:.1f} GHz, "
            f"{instances} instances, {gips:6.1f} GIPS"
        )


if __name__ == "__main__":
    main()
