#!/usr/bin/env python3
"""Dark-silicon patterning: where the dark cores sit changes the peak heat.

Reproduces the paper's Figure 8 story interactively: the same workload
(8-thread x264 instances at 3.6 GHz) is mapped once contiguously and once
with a spread pattern; the script renders both steady-state thermal maps
as ASCII heat maps and reports which mapping violates the 80 degC limit.

Run:  python examples/dark_silicon_patterning.py
"""

import numpy as np

from repro import (
    Chip,
    NODE_16NM,
    PARSEC,
    ContiguousPlacer,
    NeighbourhoodSpreadPlacer,
    PowerBudgetConstraint,
    TemperatureConstraint,
    Workload,
    estimate_dark_silicon,
    map_workload,
)
from repro.thermal.analysis import temperature_map

#: ASCII shades from cool to hot.
SHADES = " .:-=+*#%@"


def render(grid: np.ndarray, lo: float, hi: float) -> str:
    """Render a temperature grid as an ASCII heat map."""
    span = max(hi - lo, 1e-9)
    lines = []
    for row in grid:
        cells = []
        for t in row:
            shade = SHADES[
                min(int((t - lo) / span * (len(SHADES) - 1)), len(SHADES) - 1)
            ]
            cells.append(shade * 2)
        lines.append("".join(cells))
    return "\n".join(lines)


def main() -> None:
    chip = Chip.for_node(NODE_16NM)
    app = PARSEC["x264"]
    f = chip.node.f_max
    rows, cols = chip.grid

    # Largest patterned workload that stays below T_DTM.
    patterned_fit = estimate_dark_silicon(
        chip, app, f, TemperatureConstraint(), placer=NeighbourhoodSpreadPlacer()
    )
    n = len(patterned_fit.placed)
    workload = Workload.replicate(app, n, 8, f)
    unconstrained = PowerBudgetConstraint(1e9)

    contiguous = map_workload(
        chip, workload, unconstrained, placer=ContiguousPlacer()
    )
    patterned = map_workload(
        chip, workload, unconstrained, placer=NeighbourhoodSpreadPlacer()
    )

    maps = {
        "contiguous": temperature_map(chip.thermal, contiguous.core_powers, rows, cols),
        "patterned": temperature_map(chip.thermal, patterned.core_powers, rows, cols),
    }
    lo = min(m.min() for m in maps.values())
    hi = max(m.max() for m in maps.values())

    print(
        f"Workload: {n} instances of {app.name} x 8 threads "
        f"({8 * n} active cores) at {f / 1e9:.1f} GHz, "
        f"{contiguous.total_power:.0f} W total\n"
    )
    for name, result in (("contiguous", contiguous), ("patterned", patterned)):
        verdict = (
            "VIOLATES T_DTM" if result.peak_temperature > chip.t_dtm else "safe"
        )
        print(
            f"--- {name}: peak {result.peak_temperature:.1f} degC "
            f"({verdict}) ---"
        )
        print(render(maps[name], lo, hi))
        print()

    print(
        "Same cores, same power — only the *pattern* differs.  Spreading "
        "the dark cores\nbetween the active ones keeps the same workload "
        "under the DTM threshold\n(DaSim's dark-silicon patterning, paper "
        "Section 4)."
    )


if __name__ == "__main__":
    main()
