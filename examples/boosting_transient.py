#!/usr/bin/env python3
"""Boosting vs constant frequency: a transient race (paper Figure 11).

Twelve 8-thread x264 instances on the 16 nm chip.  The constant scheme
holds the highest thermally safe DVFS level; the boosting scheme runs the
paper's Turbo-Boost-style closed loop (1 ms control period, 200 MHz
steps, 80 degC threshold, 500 W electrical cap) and oscillates around the
threshold.

Run:  python examples/boosting_transient.py [seconds]
"""

import sys

from repro import (
    Chip,
    NODE_16NM,
    PARSEC,
    BoostingController,
    NeighbourhoodSpreadPlacer,
    VFCurve,
    Workload,
    best_constant_frequency,
    place_workload,
    run_boosting,
    run_constant,
)


def sparkline(values, lo, hi, width=60):
    """Downsample a trace into a one-line ASCII sparkline."""
    ramp = "_.-~*^"
    step = max(1, len(values) // width)
    picked = values[::step][:width]
    span = max(hi - lo, 1e-9)
    return "".join(
        ramp[min(int((v - lo) / span * (len(ramp) - 1)), len(ramp) - 1)]
        for v in picked
    )


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 20.0
    chip = Chip.for_node(NODE_16NM)
    workload = Workload.replicate(PARSEC["x264"], 12, 8, chip.node.f_max)
    placed = place_workload(chip, workload, placer=NeighbourhoodSpreadPlacer())

    const = best_constant_frequency(placed)
    print(
        f"Constant scheme: {const.frequency / 1e9:.1f} GHz, "
        f"{const.gips:.0f} GIPS, {const.total_power:.0f} W, "
        f"steady peak {const.peak_temperature:.1f} degC"
    )

    curve = VFCurve.for_node(chip.node)
    controller = BoostingController(
        f_min=chip.node.f_min,
        f_max=curve.f_limit,
        step=chip.node.dvfs_step,
        threshold=chip.t_dtm,
        initial_frequency=const.frequency,
    )
    print(f"Simulating {duration:.0f} s of closed-loop boosting ...")
    boost = run_boosting(
        placed,
        controller,
        duration=duration,
        record_interval=duration / 100,
        warm_start_frequency=const.frequency,
        power_cap=500.0,
    )
    constant = run_constant(
        placed, const.frequency, duration=duration,
        record_interval=duration / 100,
    )

    print()
    print("peak temperature trace [74..81 degC]:")
    print(f"  boosting  {sparkline(boost.peak_temperatures, 74, 81)}")
    print(f"  constant  {sparkline(constant.peak_temperatures, 74, 81)}")
    print()
    print(f"{'':12s}{'avg GIPS':>10}{'max T [degC]':>14}{'max P [W]':>11}{'energy [J]':>12}")
    for name, r in (("boosting", boost), ("constant", constant)):
        print(
            f"  {name:10s}{r.average_gips:>10.1f}{r.max_temperature:>14.2f}"
            f"{r.max_power:>11.1f}{r.energy:>12.1f}"
        )
    gain = boost.average_gips / constant.average_gips - 1.0
    power_ratio = boost.max_power / constant.max_power
    print(
        f"\nBoosting gains {gain:+.1%} average performance for a "
        f"{power_ratio:.1f}x peak-power increase —\nthe paper's "
        f"Observation 3: constant frequencies are the sustainable choice."
    )


if __name__ == "__main__":
    main()
