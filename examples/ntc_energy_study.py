#!/usr/bin/env python3
"""Where is the minimum-energy operating point? (paper Observation 4)

Sweeps energy-per-instruction over the full supply-voltage axis at 11 nm
for each PARSEC application and prints an ASCII U-curve for one of them.
The paper's conclusion — NTC is the regime for minimising energy under a
performance constraint, not for peak performance — falls out of the
numbers: the energy optimum of thread-scalable applications sits in the
near-threshold region at a fraction of the nominal-voltage energy.

Run:  python examples/ntc_energy_study.py [app]
"""

import sys

from repro import PARSEC
from repro.apps.parsec import PARSEC_ORDER
from repro.ntc.energy_sweep import energy_voltage_sweep, minimum_energy_point
from repro.power.vf_curve import VFCurve
from repro.tech import NODE_11NM


def ascii_curve(points, height=12, width=58) -> str:
    """Render energy vs voltage as a rough ASCII scatter (log-y)."""
    import math

    energies = [p.energy_per_instruction for p in points]
    lo, hi = min(energies), max(energies)
    span = math.log(hi / lo) if hi > lo else 1.0
    rows = [[" "] * width for _ in range(height)]
    for i, p in enumerate(points[:width]):
        col = int(i * (width - 1) / max(len(points) - 1, 1))
        level = math.log(p.energy_per_instruction / lo) / span
        row = height - 1 - int(level * (height - 1))
        rows[row][col] = "*"
    return "\n".join("".join(r) for r in rows)


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "x264"
    node = NODE_11NM
    curve = VFCurve.for_node(node)

    points = energy_voltage_sweep(PARSEC[app_name], node, n_points=58)
    print(
        f"{app_name} @ 11 nm, 8 threads — energy per instruction vs Vdd "
        f"({points[0].vdd:.2f} .. {points[-1].vdd:.2f} V):\n"
    )
    print(ascii_curve(points))
    print(f"{'':2s}^ NTC {'':20s} STC {'':18s} boost ^\n")

    print(f"{'app':13s} {'Vopt [V]':>9} {'f [GHz]':>8} {'region':>7} {'E/instr [pJ]':>13}")
    for name in PARSEC_ORDER:
        p = minimum_energy_point(PARSEC[name], node)
        print(
            f"{name:13s} {p.vdd:>9.3f} {p.frequency / 1e9:>8.2f} "
            f"{p.region.value:>7} {p.energy_per_instruction * 1e12:>13.1f}"
        )

    print(
        f"\nNominal rail at 11 nm: {curve.v_nominal:.2f} V — every optimum "
        f"sits far below it,\nand the scalable kernels' optima are inside "
        f"the near-threshold region."
    )


if __name__ == "__main__":
    main()
