#!/usr/bin/env python3
"""The DVFS / dark-silicon trade-off per application (paper Figure 7).

For each PARSEC application on the 16 nm chip under the 185 W TDP, this
example compares

* Scenario 1 — the naive policy: 8 threads per instance at the nominal
  maximum frequency (3.6 GHz);
* Scenario 2 — a TLP/ILP-aware choice of (threads, v/f) for the same
  offered workload (12 instances).

High-TLP applications (swaptions) win by running *more cores slower*;
low-TLP / high-ILP ones (canneal) keep fewer, faster cores.

Run:  python examples/dvfs_tradeoff.py
"""

from repro import (
    Chip,
    NODE_16NM,
    PARSEC,
    PowerBudgetConstraint,
    best_homogeneous_configuration,
    estimate_dark_silicon,
)
from repro.apps.parsec import PARSEC_ORDER

TDP = 185.0


def main() -> None:
    chip = Chip.for_node(NODE_16NM)
    cap = chip.n_cores // 8

    header = (
        f"{'app':13s} {'S1 GIPS':>8} {'S1 cores':>9} "
        f"{'S2 config':>14} {'S2 GIPS':>8} {'S2 cores':>9} {'gain':>7}"
    )
    print(header)
    print("-" * len(header))

    for name in PARSEC_ORDER:
        app = PARSEC[name]
        s1 = estimate_dark_silicon(
            chip, app, chip.node.f_max, PowerBudgetConstraint(TDP), threads=8
        )
        s2 = best_homogeneous_configuration(chip, app, TDP, max_instances=cap)
        config = f"{s2.threads}t@{s2.frequency / 1e9:.1f}GHz"
        gain = s2.gips / s1.gips - 1.0
        print(
            f"{name:13s} {s1.gips:>8.1f} {s1.active_cores:>9d} "
            f"{config:>14} {s2.gips:>8.1f} {s2.active_cores:>9d} {gain:>6.0%}"
        )

    print(
        "\nScaling v/f down converts power headroom into active cores; "
        "whether that pays\noff depends on the application's thread-level "
        "parallelism — exactly the paper's\nSection 3.3 trade-off."
    )


if __name__ == "__main__":
    main()
