#!/usr/bin/env python3
"""What an optimistic TDP really buys you, on real (varied) silicon.

Section 3.1's warning, acted out end to end:

1. A naive runtime maps swaptions instances up to the optimistic 220 W
   TDP at maximum v/f — and the chip exceeds the 80 degC DTM trigger.
2. DTM reacts.  Gating the hottest instances powers cores down (*more*
   dark silicon than the TDP analysis admitted); throttling keeps the
   cores but gives back performance.
3. On a die with process variation, a variation-aware placement of the
   same workload avoids the leaky cores and saves watts outright.

Run:  python examples/dtm_on_a_varied_die.py
"""

from repro import (
    Chip,
    NODE_16NM,
    PARSEC,
    PowerBudgetConstraint,
    estimate_dark_silicon,
)
from repro.core.estimator import map_workload
from repro.apps.workload import Workload
from repro.dtm import GateHottest, ThrottleHottest, enforce
from repro.mapping.patterns import ThermalSpreadPlacer
from repro.variation import (
    VariationAwarePlacer,
    VariationMap,
    varied_power_evaluator,
)


def main() -> None:
    chip = Chip.for_node(NODE_16NM)
    app = PARSEC["swaptions"]

    print("1) Map swaptions to the optimistic TDP (220 W) at 3.6 GHz ...")
    admitted = estimate_dark_silicon(
        chip, app, chip.node.f_max, PowerBudgetConstraint(220.0)
    )
    print(
        f"   admitted: {admitted.active_cores} cores, "
        f"{admitted.total_power:.0f} W, {admitted.gips:.0f} GIPS, "
        f"peak {admitted.peak_temperature:.1f} degC "
        f"{'— VIOLATES 80 degC' if admitted.peak_temperature > 80 else ''}"
    )

    print("\n2) DTM reacts:")
    gated = enforce(admitted, GateHottest())
    throttled = enforce(admitted, ThrottleHottest())
    print(
        f"   gate hottest:     {gated.after.active_cores} cores "
        f"({gated.cores_lost} powered down -> "
        f"{gated.effective_dark_fraction:.0%} dark, was "
        f"{admitted.dark_fraction:.0%}), {gated.after.gips:.0f} GIPS"
    )
    print(
        f"   throttle hottest: {throttled.after.active_cores} cores kept, "
        f"{throttled.after.gips:.0f} GIPS "
        f"({throttled.gips_lost:.0f} GIPS given back), "
        f"peak {throttled.after.peak_temperature:.1f} degC"
    )

    print("\n3) The same workload on a varied die (leakage spread):")
    vmap = VariationMap.generate(chip, sigma=0.5, seed=2015)
    evaluator = varied_power_evaluator(chip, vmap)
    workload = Workload.replicate(
        app, len(throttled.after.placed), 8, chip.node.f_max
    )
    oblivious = map_workload(
        chip, workload, PowerBudgetConstraint(1e9),
        placer=ThermalSpreadPlacer(), power_evaluator=evaluator,
    )
    aware = map_workload(
        chip, workload, PowerBudgetConstraint(1e9),
        placer=VariationAwarePlacer(vmap, leakage_weight=0.5),
        power_evaluator=evaluator,
    )
    print(f"   die leakage spread: {vmap.spread:.1f}x (max/min core)")
    print(
        f"   variation-oblivious placement: {oblivious.total_power:.1f} W, "
        f"peak {oblivious.peak_temperature:.1f} degC"
    )
    print(
        f"   variation-aware placement:     {aware.total_power:.1f} W, "
        f"peak {aware.peak_temperature:.1f} degC "
        f"({oblivious.total_power - aware.total_power:.1f} W saved; the "
        f"leakage_weight knob trades watts against spreading)"
    )

    print(
        "\nThe fixed-budget analysis promised "
        f"{admitted.active_cores} cores; physics delivered "
        f"{gated.after.active_cores}-{throttled.after.active_cores} "
        "depending on the DTM policy — which is why the paper models dark "
        "silicon\nwith the temperature constraint directly."
    )


if __name__ == "__main__":
    main()
