#!/usr/bin/env python3
"""Quickstart: how much of a 100-core 16 nm chip can you actually light up?

Builds the paper's 16 nm chip (100 Alpha-like cores, HotSpot-style RC
package), offers it 8-thread instances of an application, and compares the
dark-silicon estimate under the two constraint models of the paper:

* a fixed power budget (TDP, 185 W), and
* the real physical limit — the 80 degC DTM trigger temperature.

Run:  python examples/quickstart.py [app]
"""

import sys

from repro import (
    Chip,
    NODE_16NM,
    PARSEC,
    PowerBudgetConstraint,
    TemperatureConstraint,
    NeighbourhoodSpreadPlacer,
    estimate_dark_silicon,
)


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "x264"
    app = PARSEC[app_name]

    print(f"Building the paper's 16 nm chip (100 cores) ...")
    chip = Chip.for_node(NODE_16NM)
    frequency = chip.node.f_max
    placer = NeighbourhoodSpreadPlacer()

    print(
        f"Workload: 8-thread instances of {app.name} at "
        f"{frequency / 1e9:.1f} GHz\n"
    )

    for label, constraint in (
        ("TDP 185 W          ", PowerBudgetConstraint(185.0)),
        ("temperature 80 degC", TemperatureConstraint()),
    ):
        result = estimate_dark_silicon(
            chip, app, frequency, constraint, placer=placer
        )
        print(
            f"constraint {label}: "
            f"{result.active_cores:3d} active / {result.dark_cores:3d} dark "
            f"({result.dark_fraction:4.0%} dark silicon), "
            f"{result.total_power:6.1f} W, "
            f"peak {result.peak_temperature:5.1f} degC, "
            f"{result.gips:6.1f} GIPS"
        )

    print(
        "\nThe temperature constraint is the physical one: whenever it "
        "admits more cores\nthan the TDP, the TDP was overestimating dark "
        "silicon (the paper's Observation 1)."
    )


if __name__ == "__main__":
    main()
