# Convenience targets for the dark-silicon reproduction.

# Make every target work from a plain checkout (no editable install).
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: install test lint figures-smoke obs-smoke bench bench-smoke bench-track bench-backends report experiments examples clean

install:
	pip install -e . || python setup.py develop

test:
	$(MAKE) lint
	pytest tests/
	$(MAKE) figures-smoke
	$(MAKE) obs-smoke

# Project-specific static analysis (repro.lint), two-phase: per-file
# rules (unit-literal, float-eq, exception, metric-name, spawn-safety)
# plus whole-program dimension/lock/lifecycle checks over the project
# call graph.  Module summaries are cached content-addressed under
# .lint-cache, so warm runs only re-summarize edited files.  Exits
# non-zero on any finding not ratified in lint_baseline.json; see
# docs/linting.md.
lint:
	python -m repro.cli lint src tests --cache .lint-cache

# Cold + warm batch pass against a throwaway artifact store: the first
# run computes every registered experiment in quick mode, the second
# must be served entirely from the store (--expect-cached exits 3 on
# any recomputation; --profile prints the store.* hit counters).
# Catches cache-key, canonicalisation or fingerprint drift.
figures-smoke:
	rm -rf .figures-smoke-store
	python -m repro.cli batch --quick --store .figures-smoke-store
	python -m repro.cli batch --quick --store .figures-smoke-store --expect-cached --profile
	rm -rf .figures-smoke-store

# Round-trip the continuous-telemetry layer on one quick experiment:
# run with the background sampler streaming to JSONL and attribution on,
# tail the sample stream, render the snapshot in the Prometheus text
# format, and evaluate the shipped benchmarks/budgets.json against it.
obs-smoke:
	rm -rf .obs-smoke
	mkdir -p .obs-smoke
	python -m repro.cli run fig5 --quick --sample-out .obs-smoke/samples.jsonl \
		--sample-interval 0.05 --attribution --profile-out .obs-smoke/snapshot.json
	python -m repro.cli obs tail --follow .obs-smoke/samples.jsonl
	python -m repro.cli obs prom --snapshot .obs-smoke/snapshot.json > .obs-smoke/metrics.prom
	python -m repro.cli obs watch --snapshot .obs-smoke/snapshot.json
	rm -rf .obs-smoke

bench:
	pytest benchmarks/ --benchmark-only

# Fast sanity pass over the hot-path benchmarks: fails on any exception
# (import errors, solver regressions), without judging timings.
bench-smoke:
	pytest benchmarks/bench_fig10_tsp.py benchmarks/bench_runtime_policies.py -x -q --benchmark-only

# Timed + instrumented trajectory entry: runs the bench-smoke set with
# the observability registry on, appends wall-clock and registry
# snapshots to BENCH_TRACK.json, and fails on >20% regression vs the
# committed benchmarks/bench_baseline.json.
bench-track:
	python benchmarks/track.py

# Smoke-run the Figure 10 TSP bench under every thermal solver backend
# (dense, sparse, compiled) and print the wall-clock comparison.
bench-backends:
	python benchmarks/track.py --backends

# Render BENCH_TRACK.json (+ any runs.jsonl ledger passed via
# REPORT_STORE=DIR) into the markdown dashboard at reports/performance.md.
report:
	python -m repro.cli report $(if $(REPORT_STORE),--store $(REPORT_STORE))

experiments:
	python -m repro.cli run all

examples:
	for f in examples/*.py; do echo "== $$f =="; python $$f; done

clean:
	rm -rf build dist src/*.egg-info .pytest_benchmarks .benchmarks .figures-smoke-store .lint-cache
	find . -name __pycache__ -type d -exec rm -rf {} +
