# Convenience targets for the dark-silicon reproduction.

.PHONY: install test bench experiments examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.cli all

examples:
	for f in examples/*.py; do echo "== $$f =="; python $$f; done

clean:
	rm -rf build dist src/*.egg-info .pytest_benchmarks .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
