"""Setuptools shim.

All metadata lives in pyproject.toml; this file only enables legacy
editable installs (``pip install -e . --no-use-pep517``) on offline
environments that lack the ``wheel`` package required by PEP 517 builds.
"""

from setuptools import setup

setup()
